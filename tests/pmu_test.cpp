// Tests for the PMU plane (src/perf/pmu.*): mode helpers and sample
// arithmetic, the degradation ladder driven through an injected
// perf_event_open shim, the forced software-only rung, real hardware
// spin-kernel deltas (skipped where the PMU is denied), and the
// trace-pairing + per-grain-bin attribution in the analyzer
// (src/perf/analysis.*) on hand-built event streams.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "perf/analysis.hpp"
#include "perf/pmu.hpp"
#include "perf/trace.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <linux/perf_event.h>
#include <unistd.h>
#define GRAN_PMU_TEST_SHIM 1
#else
#define GRAN_PMU_TEST_SHIM 0
#endif

namespace gran {
namespace {

using perf::pmu_mode;
using perf::trace_event;
using perf::trace_kind;

// The plane (and the open shim) are process-global: every test starts and
// ends with both reset.
class PmuTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    perf::set_pmu_open_for_test(nullptr);
    perf::pmu_plane::instance().reset_for_test();
  }
};

// --- mode helpers ------------------------------------------------------------

TEST_F(PmuTest, ModeNamesAndUnavailableCounts) {
  EXPECT_STREQ(perf::pmu_mode_name(pmu_mode::off), "off");
  EXPECT_STREQ(perf::pmu_mode_name(pmu_mode::full), "full");
  EXPECT_STREQ(perf::pmu_mode_name(pmu_mode::reduced), "reduced");
  EXPECT_STREQ(perf::pmu_mode_name(pmu_mode::minimal), "minimal");
  EXPECT_STREQ(perf::pmu_mode_name(pmu_mode::software), "software");
  EXPECT_EQ(perf::pmu_events_unavailable(pmu_mode::full), 0);
  EXPECT_EQ(perf::pmu_events_unavailable(pmu_mode::reduced), 2);
  EXPECT_EQ(perf::pmu_events_unavailable(pmu_mode::minimal), 3);
  EXPECT_EQ(perf::pmu_events_unavailable(pmu_mode::software), 4);
}

TEST_F(PmuTest, SampleSubtractionSaturates) {
  perf::pmu_sample a, b;
  a.cycles = 100;
  a.instructions = 50;
  b.cycles = 120;
  b.instructions = 40;  // counter reset / reopened fd: never underflow
  const perf::pmu_sample d = b - a;
  EXPECT_EQ(d.cycles, 20u);
  EXPECT_EQ(d.instructions, 0u);
}

TEST_F(PmuTest, PackPmuArgRoundTripsAndSaturates) {
  const std::uint64_t arg = perf::pack_pmu_arg(123456, 654321);
  EXPECT_EQ(perf::pmu_arg_cycles(arg), 123456u);
  EXPECT_EQ(perf::pmu_arg_instructions(arg), 654321u);
  // Deltas wider than 32 bits clamp instead of bleeding into the other half.
  const std::uint64_t big = perf::pack_pmu_arg(1ull << 40, (1ull << 36) + 7);
  EXPECT_EQ(perf::pmu_arg_cycles(big), 0xffffffffull);
  EXPECT_EQ(perf::pmu_arg_instructions(big), 0xffffffffull);
}

// --- plane configuration -----------------------------------------------------

TEST_F(PmuTest, PlaneOffByDefaultAndOnOff) {
  auto& plane = perf::pmu_plane::instance();
  EXPECT_FALSE(plane.enabled());
  EXPECT_EQ(plane.mode(), pmu_mode::off);
  EXPECT_EQ(plane.create_reader(), nullptr);

  plane.configure("off");
  EXPECT_FALSE(plane.enabled());
  plane.configure("0");
  EXPECT_FALSE(plane.enabled());
  plane.configure("1");
  EXPECT_TRUE(plane.enabled());
  plane.configure("");
  EXPECT_FALSE(plane.enabled());
}

TEST_F(PmuTest, ConfigureWinsOverLaterEnvInit) {
  auto& plane = perf::pmu_plane::instance();
  plane.configure("sw");
  // thread_manager calls init_from_env at startup; an explicit configure
  // (CLI --pmu) must not be clobbered by it.
  plane.init_from_env();
  EXPECT_TRUE(plane.enabled());
  EXPECT_EQ(plane.mode(), pmu_mode::software);
}

TEST_F(PmuTest, ForcedSoftwareReaderCountsCyclesOnly) {
  auto& plane = perf::pmu_plane::instance();
  plane.configure("software");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode(), pmu_mode::software);
  EXPECT_EQ(plane.mode(), pmu_mode::software);
  EXPECT_EQ(plane.events_unavailable(), 4);

  perf::pmu_sample s0, s1;
  r->sample(s0);
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  r->sample(s1);
  // rdtsc is monotonic, so the cycle delta is positive even in software
  // mode; the hardware-only channels must stay silent.
  EXPECT_GT(s1.cycles, s0.cycles);
  EXPECT_EQ(s0.instructions, 0u);
  EXPECT_EQ(s1.instructions, 0u);
  EXPECT_EQ(s1.llc_misses, 0u);
}

// --- degradation ladder via the open shim ------------------------------------

#if GRAN_PMU_TEST_SHIM

// Bitmask over PERF_COUNT_HW_* configs the shim denies; software events are
// always denied so ctx switches exercise the rusage fallback.
std::uint64_t g_denied_hw = 0;

int shim_open(std::uint32_t type, std::uint64_t config, int /*group_fd*/) {
  if (type != PERF_TYPE_HARDWARE || ((g_denied_hw >> config) & 1)) {
    errno = EPERM;
    return -1;
  }
  // Any real fd satisfies the open path; reads from it later fail the size
  // check, which is its own test below.
  return ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

TEST_F(PmuTest, LadderDenyAllLandsOnSoftware) {
  g_denied_hw = ~0ull;
  perf::set_pmu_open_for_test(&shim_open);
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode(), pmu_mode::software);
  EXPECT_EQ(plane.mode(), pmu_mode::software);
  EXPECT_EQ(plane.events_unavailable(), 4);
}

TEST_F(PmuTest, LadderDenyLLCLandsOnMinimal) {
  g_denied_hw = (1ull << PERF_COUNT_HW_CACHE_MISSES) |
                (1ull << PERF_COUNT_HW_BRANCH_MISSES) |
                (1ull << PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  perf::set_pmu_open_for_test(&shim_open);
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode(), pmu_mode::minimal);
  EXPECT_EQ(plane.events_unavailable(), 3);
}

TEST_F(PmuTest, LadderDenyWideGroupLandsOnReduced) {
  g_denied_hw = (1ull << PERF_COUNT_HW_BRANCH_MISSES) |
                (1ull << PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  perf::set_pmu_open_for_test(&shim_open);
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode(), pmu_mode::reduced);
  EXPECT_EQ(plane.events_unavailable(), 2);
}

TEST_F(PmuTest, NegotiatedRungSticksForLaterReaders) {
  g_denied_hw = (1ull << PERF_COUNT_HW_BRANCH_MISSES) |
                (1ull << PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  perf::set_pmu_open_for_test(&shim_open);
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto first = plane.create_reader();
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(first->mode(), pmu_mode::reduced);
  // The denial goes away (cgroup relaxed mid-run) — but later readers start
  // at the negotiated rung instead of re-probing full, so the fleet stays
  // mode-homogeneous.
  g_denied_hw = 0;
  auto second = plane.create_reader();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->mode(), pmu_mode::reduced);
  EXPECT_EQ(plane.mode(), pmu_mode::reduced);
}

TEST_F(PmuTest, BadGroupReadDegradesReaderToSoftware) {
  g_denied_hw = 0;  // every open "succeeds" but the fds are /dev/null
  perf::set_pmu_open_for_test(&shim_open);
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->mode(), pmu_mode::full);
  perf::pmu_sample s;
  r->sample(s);  // short read -> permanent software degradation, no error
  EXPECT_EQ(r->mode(), pmu_mode::software);
  EXPECT_GT(s.cycles, 0u);  // rdtsc fallback fills cycles immediately
  perf::pmu_sample s2;
  r->sample(s2);
  EXPECT_GE(s2.cycles, s.cycles);
}

#endif  // GRAN_PMU_TEST_SHIM

// --- real hardware (skips when the PMU is denied) ----------------------------

TEST_F(PmuTest, SpinKernelInstructionDeltasAreStable) {
  auto& plane = perf::pmu_plane::instance();
  plane.configure("1");
  auto r = plane.create_reader();
  ASSERT_NE(r, nullptr);
  if (perf::pmu_events_unavailable(r->mode()) > 3)
    GTEST_SKIP() << "no instruction counter here (mode "
                 << perf::pmu_mode_name(r->mode()) << ")";

  const auto spin = [] {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 2000000; ++i) sink = sink + i;
  };
  perf::pmu_sample s0, s1, s2;
  r->sample(s0);
  spin();
  r->sample(s1);
  spin();
  r->sample(s2);
  const perf::pmu_sample d1 = s1 - s0;
  const perf::pmu_sample d2 = s2 - s1;
  // A fixed spin retires a near-fixed instruction count; the two deltas
  // must agree well within 2x (they typically agree within a percent, but
  // multiplexing scaling adds noise on busy machines).
  ASSERT_GT(d1.instructions, 0u);
  ASSERT_GT(d2.instructions, 0u);
  EXPECT_GT(d1.cycles, 0u);
  const double ratio = static_cast<double>(d1.instructions) /
                       static_cast<double>(d2.instructions);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// --- analyzer pairing + grain bins on hand-built streams ---------------------

trace_event ev(std::uint64_t ticks, trace_kind k, std::uint16_t worker,
               std::uint64_t arg = 0, std::uint32_t arg2 = 0) {
  trace_event e;
  e.ticks = ticks;
  e.kind = k;
  e.worker = worker;
  e.arg = arg;
  e.arg2 = arg2;
  return e;
}

perf::trace_dump make_dump(std::vector<perf::trace_lane> lanes) {
  perf::trace_dump d;
  d.lanes = std::move(lanes);
  d.ns_per_tick = 1.0;
  d.names = std::make_shared<const std::vector<std::string>>();
  return d;
}

// Two tasks on one worker, each with a scheduler-gap record (after begin)
// and a kernel record (after end), the shape thread_manager emits.
perf::trace_dump pmu_dump(std::uint64_t instr1, std::uint64_t instr2) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(100, trace_kind::task_begin, 0, 1),
      ev(100, trace_kind::task_pmu, 0, perf::pack_pmu_arg(1000, 400), 5),
      ev(200, trace_kind::task_end, 0, 1),
      ev(200, trace_kind::task_pmu, 0, perf::pack_pmu_arg(9000, instr1), 10),
      ev(300, trace_kind::task_begin, 0, 2),
      ev(300, trace_kind::task_pmu, 0, perf::pack_pmu_arg(1200, 440), 7),
      ev(400, trace_kind::task_end, 0, 2),
      ev(400, trace_kind::task_pmu, 0, perf::pack_pmu_arg(8800, instr2), 8),
  };
  perf::trace_lane ext;
  ext.worker = perf::external_worker;
  ext.events = {
      ev(10, trace_kind::task_enqueue, perf::external_worker, 1,
         perf::external_worker),
      ev(20, trace_kind::task_enqueue, perf::external_worker, 2,
         perf::external_worker),
  };
  return make_dump({w0, ext});
}

TEST_F(PmuTest, AnalyzerPairsKernelAndSchedRecords) {
  const auto r = perf::analyze_trace(pmu_dump(3600, 3400));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.has_pmu);
  EXPECT_FALSE(r.pmu_software_only);
  EXPECT_EQ(r.pmu_tasks, 2u);

  const perf::task_record* t1 = nullptr;
  for (const auto& t : r.tasks)
    if (t.id == 1) t1 = &t;
  ASSERT_NE(t1, nullptr);
  EXPECT_TRUE(t1->has_pmu);
  EXPECT_EQ(t1->pmu_cycles, 9000u);
  EXPECT_EQ(t1->pmu_instructions, 3600u);
  EXPECT_EQ(t1->pmu_llc_misses, 10u);
  EXPECT_EQ(t1->pmu_sched_cycles, 1000u);
  EXPECT_EQ(t1->pmu_sched_instructions, 400u);
  EXPECT_EQ(t1->pmu_sched_llc_misses, 5u);
}

TEST_F(PmuTest, AnalyzerBinsByGrainAndReportsTable) {
  const auto r = perf::analyze_trace(pmu_dump(3600, 3400));
  ASSERT_TRUE(r.ok) << r.error;
  // Both tasks executed 100 ns -> one bin covering [64, 128).
  ASSERT_EQ(r.pmu_bins.size(), 1u);
  const auto& bin = r.pmu_bins[0];
  EXPECT_EQ(bin.tasks, 2u);
  EXPECT_DOUBLE_EQ(bin.grain_lo_ns, 64.0);
  EXPECT_DOUBLE_EQ(bin.grain_hi_ns, 128.0);
  EXPECT_NEAR(bin.kernel_cycles, (9000.0 + 8800.0) / 2, 1e-9);
  EXPECT_NEAR(bin.sched_cycles, (1000.0 + 1200.0) / 2, 1e-9);
  EXPECT_NEAR(bin.kernel_instructions, (3600.0 + 3400.0) / 2, 1e-9);
  EXPECT_NEAR(bin.llc_misses, (10.0 + 8.0) / 2, 1e-9);
  // Median IPC of {3600/9000, 3400/8800}.
  EXPECT_GT(bin.median_ipc, 0.35);
  EXPECT_LT(bin.median_ipc, 0.45);
  EXPECT_DOUBLE_EQ(bin.stolen_frac, 0.0);

  std::ostringstream report;
  perf::write_report(report, r);
  EXPECT_NE(report.str().find("pmu attribution (hardware counters)"),
            std::string::npos);
  EXPECT_NE(report.str().find("grain_us"), std::string::npos);
}

TEST_F(PmuTest, AnalyzerLabelsSoftwareOnlyCaptures) {
  // Zero instructions everywhere = rdtsc-only capture; the report must say
  // so instead of printing an all-zero IPC column as if it were measured.
  const auto r = perf::analyze_trace(pmu_dump(0, 0));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.has_pmu);
  EXPECT_TRUE(r.pmu_software_only);
  ASSERT_FALSE(r.pmu_bins.empty());
  EXPECT_EQ(r.pmu_bins[0].kernel_instructions, 0.0);
  EXPECT_GT(r.pmu_bins[0].kernel_cycles, 0.0);

  std::ostringstream report;
  perf::write_report(report, r);
  EXPECT_NE(report.str().find("software-only"), std::string::npos);
}

TEST_F(PmuTest, AnalyzerSurvivesOrphanPmuRecords) {
  // Ring wraparound can drop the begin/end a task_pmu belonged to; orphan
  // records must be ignored, not crash or misattribute.
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(50, trace_kind::task_pmu, 0, perf::pack_pmu_arg(7000, 2000), 3),
      ev(100, trace_kind::task_begin, 0, 9),
      ev(200, trace_kind::task_end, 0, 9),
      ev(200, trace_kind::task_pmu, 0, perf::pack_pmu_arg(5000, 1500), 2),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pmu_tasks, 1u);
  const perf::task_record* t9 = nullptr;
  for (const auto& t : r.tasks)
    if (t.id == 9) t9 = &t;
  ASSERT_NE(t9, nullptr);
  EXPECT_EQ(t9->pmu_cycles, 5000u);
  EXPECT_EQ(t9->pmu_sched_cycles, 0u);
}

TEST_F(PmuTest, TaskCsvCarriesPmuColumns) {
  const auto r = perf::analyze_trace(pmu_dump(3600, 3400));
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream csv;
  perf::write_task_csv(csv, r);
  EXPECT_NE(csv.str().find("pmu_cycles"), std::string::npos);
  EXPECT_NE(csv.str().find("pmu_sched_instructions"), std::string::npos);
  EXPECT_NE(csv.str().find("3600"), std::string::npos);
}

}  // namespace
}  // namespace gran
