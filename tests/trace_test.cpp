// Tests for the observability stack: trace rings + Chrome JSON export
// (src/perf/trace.*), log2 histograms (src/perf/histogram.*), and the
// background counter sampler (src/perf/sampler_thread.*).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/counters.hpp"
#include "perf/histogram.hpp"
#include "perf/observability.hpp"
#include "perf/sampler_thread.hpp"
#include "perf/trace.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

// The tracer is process-global state: every test leaves it disabled & empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    auto& t = perf::tracer::instance();
    t.disable();
    t.set_export_path("");
    t.clear();
  }
};

// --- trace_ring --------------------------------------------------------------

TEST_F(TraceTest, RingCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(perf::trace_ring(5).capacity(), 8u);
  EXPECT_EQ(perf::trace_ring(8).capacity(), 8u);
  EXPECT_EQ(perf::trace_ring(1).capacity(), 2u);
}

TEST_F(TraceTest, RingKeepsEventsInOrder) {
  perf::trace_ring ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    perf::trace_event e;
    e.ticks = i;
    e.arg = i;
    ring.emit(e);
  }
  EXPECT_EQ(ring.written(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(events[i].arg, i);
}

TEST_F(TraceTest, RingWrapKeepsLatestAndCountsDropped) {
  perf::trace_ring ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    perf::trace_event e;
    e.arg = i;
    ring.emit(e);
  }
  EXPECT_EQ(ring.written(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].arg, 12 + i);

  ring.clear();
  EXPECT_EQ(ring.written(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST_F(TraceTest, RingCountersReadableWhileProducing) {
  // One producer, one observer polling the atomic counters — the only
  // concurrent access the ring supports. Exercised under TSan by
  // scripts/tsan_check.sh.
  perf::trace_ring ring(64);
  constexpr std::uint64_t n = 100'000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < n; ++i) {
      perf::trace_event e;
      e.arg = i;
      ring.emit(e);
    }
  });
  std::uint64_t last = 0;
  while (last < n) {
    const std::uint64_t d = ring.dropped();
    const std::uint64_t w = ring.written();  // read after: w >= d holds
    EXPECT_GE(w, last);                      // monotone
    EXPECT_GE(w, d);
    last = w;
  }
  producer.join();
  EXPECT_EQ(ring.written(), n);
  EXPECT_EQ(ring.dropped(), n - ring.capacity());
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

TEST_F(TraceTest, EmitHelperGatesOnEnabledAndRing) {
  perf::trace_ring ring(16);
  perf::trace_emit(&ring, perf::trace_kind::task_begin, 0, 1);
  EXPECT_EQ(ring.written(), 0u) << "disabled tracer must not emit";
  perf::trace_emit(nullptr, perf::trace_kind::task_begin, 0, 1);  // no crash

  perf::tracer::instance().enable();
  perf::trace_emit(&ring, perf::trace_kind::task_begin, 3, 42, 7, "t");
  ASSERT_EQ(ring.written(), 1u);
  const auto events = ring.snapshot();
  EXPECT_EQ(events[0].kind, perf::trace_kind::task_begin);
  EXPECT_EQ(events[0].worker, 3);
  EXPECT_EQ(events[0].arg, 42u);
  EXPECT_EQ(events[0].arg2, 7u);
  EXPECT_GT(events[0].ticks, 0u);
}

// --- log2_histogram ----------------------------------------------------------

TEST(Histogram, BucketOfEdges) {
  using perf::log2_histogram;
  EXPECT_EQ(log2_histogram::bucket_of(0), 0);
  EXPECT_EQ(log2_histogram::bucket_of(1), 0);
  EXPECT_EQ(log2_histogram::bucket_of(2), 1);
  EXPECT_EQ(log2_histogram::bucket_of(3), 1);
  EXPECT_EQ(log2_histogram::bucket_of(4), 2);
  EXPECT_EQ(log2_histogram::bucket_of((1ull << 20) - 1), 19);
  EXPECT_EQ(log2_histogram::bucket_of(1ull << 20), 20);
  EXPECT_EQ(log2_histogram::bucket_of(~0ull), 63);
}

TEST(Histogram, CountSumMean) {
  perf::log2_histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  const auto s = h.snap();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 600u);
  EXPECT_DOUBLE_EQ(s.mean(), 200.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBracketed) {
  perf::log2_histogram h;
  for (int i = 0; i < 90; ++i) h.record(1000);    // bucket [512, 1024) is 9
  for (int i = 0; i < 10; ++i) h.record(100'000); // bucket [65536, 131072)
  const auto s = h.snap();
  const double p50 = s.percentile(50);
  const double p95 = s.percentile(95);
  const double p99 = s.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 lands in the bucket holding the 1000-ns samples...
  EXPECT_GE(p50, 512.0);
  EXPECT_LT(p50, 2048.0);
  // ...and p99 in the bucket holding the 100-us tail.
  EXPECT_GE(p99, 65536.0);
  EXPECT_LT(p99, 131072.0);
  EXPECT_EQ(perf::histogram_snapshot{}.percentile(50), 0.0);
}

TEST(Histogram, MergeAndReset) {
  perf::log2_histogram a, b;
  a.record(10);
  b.record(1000);
  b.record(2000);
  auto s = a.snap();
  s += b.snap();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 3010u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.snap().sum, 0u);
}

// --- end-to-end: manager with tracing on -------------------------------------

TEST_F(TraceTest, ManagerExportContainsLanesAndTaskSlices) {
  perf::tracer::instance().enable(1 << 18);
  constexpr int n = 200;
  std::uint64_t exec_ns = 0;
  {
    thread_manager tm(test_config(2));
    tm.reset_counters();
    for (int i = 0; i < n; ++i)
      tm.spawn(
          [] {
            volatile double x = 1.0;
            for (int k = 0; k < 4000; ++k) x = x * 1.0000001 + 0.1;
          },
          task_priority::normal, "traced-task");
    tm.wait_idle();
    exec_ns = tm.counter_totals().exec_ns;
  }

  std::ostringstream os;
  perf::tracer::instance().write_chrome_json(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("traced-task"), std::string::npos);

  // Count the task slices and sum their durations (one slice per line; dur
  // is exported in microseconds).
  int slices = 0;
  double dur_us = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"cat\":\"task\"") == std::string::npos) continue;
    ++slices;
    const auto pos = line.find("\"dur\":");
    ASSERT_NE(pos, std::string::npos);
    dur_us += std::strtod(line.c_str() + pos + 6, nullptr);
  }
  EXPECT_EQ(slices, n) << "one complete slice per single-phase task";
  // Phase begin/end events carry the exact tsc reads the Σt_exec counter
  // accumulates (trace_emit_at), so the two sums are the same measurement;
  // the slack only covers the exporter's µs formatting and float summation.
  EXPECT_NEAR(dur_us * 1e3, static_cast<double>(exec_ns),
              0.05 * static_cast<double>(exec_ns));
}

TEST_F(TraceTest, DroppedCounterSurfacesRingWrap) {
  perf::tracer::instance().enable(16);  // tiny rings: guaranteed wrap
  {
    thread_manager tm(test_config(1));
    for (int i = 0; i < 500; ++i) tm.spawn([] {});
    tm.wait_idle();
    EXPECT_GT(perf::registry::instance().value_or("/threads/count/trace-dropped", -1),
              0.0);
  }
  EXPECT_GT(perf::tracer::instance().total_dropped(), 0u);
}

TEST_F(TraceTest, StealEventsCarryVictim) {
  perf::tracer::instance().enable(1 << 16);
  {
    scheduler_config cfg = test_config(4);
    cfg.policy = "work-stealing-lifo";
    thread_manager tm(cfg);
    for (int i = 0; i < 400; ++i)
      tm.spawn([] {
        volatile double x = 1.0;
        for (int k = 0; k < 10000; ++k) x = x * 1.0000001 + 0.1;
      });
    tm.wait_idle();
  }
  std::ostringstream os;
  perf::tracer::instance().write_chrome_json(os);
  const std::string json = os.str();
  // External spawns round-robin into per-worker inboxes; draining another
  // worker's inbox is a steal, so a 4-worker run always records some.
  EXPECT_NE(json.find("\"cat\":\"steal\""), std::string::npos);
  EXPECT_NE(json.find("\"victim\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow begin
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
}

// --- sampler_thread ----------------------------------------------------------

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override { perf::registry::instance().remove_prefix("/trtest"); }
  void TearDown() override { perf::registry::instance().remove_prefix("/trtest"); }
};

TEST_F(SamplerTest, RecordsRowsAndDumps) {
  auto& reg = perf::registry::instance();
  std::atomic<double> v{1.0};
  reg.add("/trtest/a", perf::counter_kind::gauge, "", [&v] { return v.load(); });
  reg.add("/trtest/b", perf::counter_kind::monotonic, "", [] { return 5.0; });

  perf::sampler_options opt;
  opt.prefixes = {"/trtest"};
  opt.interval_us = 500;
  perf::sampler_thread sampler(opt);
  while (sampler.samples_taken() < 5)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  v.store(2.0);
  while (sampler.samples_taken() < 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();

  const auto columns = sampler.columns();
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns[0], "/trtest/a");
  EXPECT_EQ(columns[1], "/trtest/b");

  const auto series = sampler.series();
  ASSERT_GE(series.size(), 10u);
  for (const auto& row : series) ASSERT_EQ(row.values.size(), 2u);
  EXPECT_EQ(series.front().values[0], 1.0);
  EXPECT_EQ(series.back().values[0], 2.0);
  EXPECT_EQ(series.back().values[1], 5.0);
  EXPECT_LE(series.front().timestamp_ns, series.back().timestamp_ns);

  std::ostringstream csv;
  sampler.dump_csv(csv);
  EXPECT_EQ(csv.str().rfind("time_ns,/trtest/a,/trtest/b\n", 0), 0u);
  std::ostringstream json;
  sampler.dump_json(json);
  EXPECT_NE(json.str().find("\"/trtest/a\""), std::string::npos);
  EXPECT_NE(json.str().find("\"rows\""), std::string::npos);
}

TEST_F(SamplerTest, VanishedCounterReadsNaN) {
  auto& reg = perf::registry::instance();
  reg.add("/trtest/gone", perf::counter_kind::gauge, "", [] { return 1.0; });
  perf::sampler_options opt;
  opt.prefixes = {"/trtest"};
  opt.interval_us = 500;
  perf::sampler_thread sampler(opt);
  while (sampler.samples_taken() < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  reg.remove("/trtest/gone");
  const auto before = sampler.samples_taken();
  while (sampler.samples_taken() < before + 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();

  const auto series = sampler.series();
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.front().values[0], 1.0);
  EXPECT_TRUE(std::isnan(series.back().values[0]));
  std::ostringstream csv;
  sampler.dump_csv(csv);
  EXPECT_NE(csv.str().find("nan"), std::string::npos);
}

TEST_F(SamplerTest, CapacityBoundsRetainedRows) {
  auto& reg = perf::registry::instance();
  reg.add("/trtest/x", perf::counter_kind::gauge, "", [] { return 0.0; });
  perf::sampler_options opt;
  opt.prefixes = {"/trtest"};
  opt.interval_us = 200;
  opt.capacity = 4;
  perf::sampler_thread sampler(opt);
  while (sampler.samples_taken() < 12)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();
  EXPECT_LE(sampler.series().size(), 4u);
  EXPECT_GT(sampler.samples_dropped(), 0u);
}

// --- observability_session options -------------------------------------------

TEST(Observability, OptionsFromEnvAndCli) {
  ::setenv("GRAN_TRACE", "env.json", 1);
  ::setenv("GRAN_SAMPLE_US", "250", 1);
  const auto env = perf::observability_session::options_from_env();
  EXPECT_EQ(env.trace_out, "env.json");
  EXPECT_EQ(env.sample_interval_us, 250u);
  ::unsetenv("GRAN_TRACE");
  ::unsetenv("GRAN_SAMPLE_US");

  const char* argv[] = {"prog", "--trace-out=cli.json", "--sample-interval-us=50",
                        "--sample-out=s.json", "--sample-set=/threads,/trtest"};
  const cli_args args(5, argv);
  const auto opt = perf::observability_session::options_from_cli(args, env);
  EXPECT_EQ(opt.trace_out, "cli.json");  // CLI beats env
  EXPECT_EQ(opt.sample_interval_us, 50u);
  EXPECT_EQ(opt.sample_out, "s.json");
  ASSERT_EQ(opt.sample_prefixes.size(), 2u);
  EXPECT_EQ(opt.sample_prefixes[0], "/threads");
  EXPECT_EQ(opt.sample_prefixes[1], "/trtest");
}

}  // namespace
}  // namespace gran
