// Tests for the APEX-style policy engine (core/policy_engine.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "async/gran.hpp"
#include "core/policy_engine.hpp"

namespace gran::core {
namespace {

using namespace std::chrono_literals;

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

TEST(PolicyEngine, TicksAtConfiguredPeriod) {
  policy_engine_options opts;
  opts.period = 5ms;
  policy_engine engine(opts);
  std::atomic<int> evaluations{0};
  engine.add_policy("count-ticks", {}, [&](const perf::interval&, std::uint64_t) {
    ++evaluations;
  });
  engine.start();
  EXPECT_TRUE(engine.running());
  std::this_thread::sleep_for(60ms);
  engine.stop();
  EXPECT_FALSE(engine.running());
  EXPECT_GE(evaluations.load(), 4);
  EXPECT_EQ(static_cast<std::uint64_t>(evaluations.load()), engine.ticks());
  // Stopped engine evaluates nothing further.
  const int after_stop = evaluations.load();
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(evaluations.load(), after_stop);
}

TEST(PolicyEngine, SeesCounterDeltas) {
  thread_manager tm(test_config(2));
  policy_engine_options opts;
  opts.period = 5ms;
  policy_engine engine(opts);
  std::atomic<double> total_tasks_seen{0};
  engine.add_policy("task-counter", {"/threads/count/cumulative"},
                    [&](const perf::interval& delta, std::uint64_t) {
                      total_tasks_seen =
                          total_tasks_seen + delta.value("/threads/count/cumulative", 0);
                    });
  engine.start();
  std::this_thread::sleep_for(15ms);  // let the engine capture its baseline
  for (int i = 0; i < 500; ++i) tm.spawn([] {});
  tm.wait_idle();
  std::this_thread::sleep_for(25ms);  // at least one tick after the work
  engine.stop();
  // Sum of deltas across ticks == total tasks executed during the window.
  EXPECT_GE(total_tasks_seen.load(), 500.0);
}

TEST(PolicyEngine, PolicyExceptionsAreContained) {
  policy_engine_options opts;
  opts.period = 2ms;
  policy_engine engine(opts);
  std::atomic<int> healthy_evals{0};
  engine.add_policy("throws", {}, [](const perf::interval&, std::uint64_t) {
    throw std::runtime_error("bad policy");
  });
  engine.add_policy("healthy", {}, [&](const perf::interval&, std::uint64_t) {
    ++healthy_evals;
  });
  engine.start();
  std::this_thread::sleep_for(20ms);
  engine.stop();
  EXPECT_GE(healthy_evals.load(), 2) << "a throwing policy must not kill the engine";
}

TEST(PolicyEngine, GranularityPolicyCoarsensUnderFloodOfTinyTasks) {
  thread_manager tm(test_config(4));  // oversubscribed host: high idle-rate
  grain_tuner tuner(8);
  std::atomic<std::size_t> latest_chunk{8};

  policy_engine_options opts;
  opts.period = 10ms;
  policy_engine engine(opts);
  engine.add_policy("granularity", granularity_policy_counters(),
                    make_granularity_policy(tuner, tm.num_workers(),
                                            [&](std::size_t chunk) {
                                              latest_chunk = chunk;
                                            }));
  engine.start();

  // Flood with tiny tasks for several engine periods.
  const auto until = std::chrono::steady_clock::now() + 120ms;
  while (std::chrono::steady_clock::now() < until) {
    latch done(200);
    for (int i = 0; i < 200; ++i) tm.spawn([&done] { done.count_down(); });
    done.wait();
  }
  engine.stop();

  EXPECT_GT(latest_chunk.load(), 8u)
      << "sustained fine-grain overhead must push the chunk upward";
  EXPECT_GE(engine.ticks(), 3u);
}

TEST(PolicyEngine, GranularityPolicyIgnoresIdlePeriods) {
  thread_manager tm(test_config(2));
  grain_tuner tuner(64);
  policy_engine_options opts;
  opts.period = 5ms;
  policy_engine engine(opts);
  engine.add_policy("granularity", granularity_policy_counters(),
                    make_granularity_policy(tuner, tm.num_workers(), nullptr));
  engine.start();
  std::this_thread::sleep_for(40ms);  // runtime alive but no tasks at all
  engine.stop();
  EXPECT_EQ(tuner.chunk(), 64u) << "no activity must leave the chunk untouched";
}

TEST(PolicyEngine, RestartableAfterStop) {
  policy_engine_options opts;
  opts.period = 3ms;
  policy_engine engine(opts);
  std::atomic<int> evals{0};
  engine.add_policy("p", {}, [&](const perf::interval&, std::uint64_t) { ++evals; });
  engine.start();
  std::this_thread::sleep_for(15ms);
  engine.stop();
  const int first_round = evals.load();
  EXPECT_GE(first_round, 1);
  engine.start();
  std::this_thread::sleep_for(15ms);
  engine.stop();
  EXPECT_GT(evals.load(), first_round);
}

}  // namespace
}  // namespace gran::core
