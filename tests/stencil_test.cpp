// Tests for the heat-diffusion workload: serial reference, futurized
// runtime version, and their exact agreement across granularities —
// parameterized the way the paper sweeps partition sizes.
#include <gtest/gtest.h>

#include <numeric>

#include "stencil/futurized.hpp"
#include "stencil/serial.hpp"

namespace gran::stencil {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

// --- params -----------------------------------------------------------------

TEST(StencilParams, NumPartitions) {
  params p;
  p.total_points = 1000;
  p.partition_size = 100;
  EXPECT_EQ(p.num_partitions(), 10u);
  EXPECT_EQ(p.num_tasks(), 10u * p.time_steps);
}

TEST(StencilParams, NormalizeFindsDivisor) {
  params p;
  p.total_points = 1000;
  p.partition_size = 300;  // does not divide
  p.normalize();
  EXPECT_EQ(p.total_points % p.partition_size, 0u);
  EXPECT_LE(p.partition_size, 300u);
  EXPECT_GE(p.partition_size, 1u);
}

TEST(StencilParams, NormalizeClamps) {
  params p;
  p.total_points = 100;
  p.partition_size = 5000;
  p.normalize();
  EXPECT_EQ(p.partition_size, 100u);
  p.partition_size = 0;
  p.normalize();
  EXPECT_EQ(p.partition_size, 1u);
}

TEST(StencilParams, HeatFormula) {
  params p;  // k=0.5, dt=1, dx=1  ->  u' = u + 0.5(l - 2u + r)
  EXPECT_DOUBLE_EQ(p.heat(1.0, 2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(p.heat(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.heat(4.0, 2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(p.heat(0.0, 2.0, 0.0), 0.0);  // cooling peak
}

// --- serial reference ----------------------------------------------------------

TEST(SerialStencil, InitialState) {
  params p;
  p.total_points = 5;
  const auto u = initial_state(p);
  ASSERT_EQ(u.size(), 5u);
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_DOUBLE_EQ(u[i], i);
}

TEST(SerialStencil, OneStepRingWrap) {
  params p;
  p.total_points = 4;
  const std::vector<double> u{0, 1, 2, 3};
  std::vector<double> next(4);
  step_serial(p, u, next);
  // Interior points of a linear profile stay; boundary points feel the wrap.
  EXPECT_DOUBLE_EQ(next[1], 1.0);
  EXPECT_DOUBLE_EQ(next[2], 2.0);
  EXPECT_DOUBLE_EQ(next[0], p.heat(3.0, 0.0, 1.0));  // left wraps to u[3]
  EXPECT_DOUBLE_EQ(next[3], p.heat(2.0, 3.0, 0.0));  // right wraps to u[0]
}

TEST(SerialStencil, HeatIsConserved) {
  // The symmetric 3-point kernel conserves the total on a ring.
  params p;
  p.total_points = 128;
  p.time_steps = 50;
  const auto u0 = initial_state(p);
  const auto uN = run_serial(p);
  const double sum0 = std::accumulate(u0.begin(), u0.end(), 0.0);
  const double sumN = std::accumulate(uN.begin(), uN.end(), 0.0);
  EXPECT_NEAR(sumN, sum0, 1e-6 * sum0);
}

TEST(SerialStencil, DiffusionSmoothes) {
  // Variance must not increase under diffusion.
  params p;
  p.total_points = 64;
  p.time_steps = 20;
  const auto u0 = initial_state(p);
  const auto uN = run_serial(p);
  const auto variance = [](const std::vector<double>& v) {
    const double mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
    double s = 0;
    for (double x : v) s += (x - mean) * (x - mean);
    return s / v.size();
  };
  EXPECT_LE(variance(uN), variance(u0) + 1e-9);
}

// --- partition_step --------------------------------------------------------------

TEST(PartitionStep, MatchesPointwiseKernel) {
  params p;
  const std::vector<double> left{1, 2}, mid{3, 4, 5}, right{6, 7};
  const auto next = partition_step(p, left, mid, right);
  ASSERT_EQ(next.size(), 3u);
  EXPECT_DOUBLE_EQ(next[0], p.heat(2, 3, 4));  // left.back()
  EXPECT_DOUBLE_EQ(next[1], p.heat(3, 4, 5));
  EXPECT_DOUBLE_EQ(next[2], p.heat(4, 5, 6));  // right.front()
}

TEST(PartitionStep, SinglePointPartition) {
  params p;
  const std::vector<double> left{1}, mid{2}, right{3};
  const auto next = partition_step(p, left, mid, right);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_DOUBLE_EQ(next[0], p.heat(1, 2, 3));
}

TEST(PartitionStep, TwoPointPartition) {
  params p;
  const std::vector<double> left{9}, mid{1, 2}, right{7};
  const auto next = partition_step(p, left, mid, right);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_DOUBLE_EQ(next[0], p.heat(9, 1, 2));
  EXPECT_DOUBLE_EQ(next[1], p.heat(1, 2, 7));
}

// --- futurized == serial, across granularity and workers -----------------------

struct grid_case {
  std::size_t points;
  std::size_t partition;
  std::size_t steps;
  int workers;
};

class FuturizedMatchesSerial : public ::testing::TestWithParam<grid_case> {};

TEST_P(FuturizedMatchesSerial, BitIdentical) {
  const auto [points, partition, steps, workers] = GetParam();
  params p;
  p.total_points = points;
  p.partition_size = partition;
  p.time_steps = steps;
  p.normalize();

  thread_manager tm(test_config(workers));
  const auto parallel = run_futurized(tm, p);
  const auto serial = run_serial(p);

  ASSERT_EQ(parallel.state.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel.state[i], serial[i]) << "point " << i;
  EXPECT_GT(parallel.elapsed_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    GranularitySweep, FuturizedMatchesSerial,
    ::testing::Values(grid_case{1'000, 1, 3, 2},        // 1-point partitions
                      grid_case{1'000, 2, 5, 2},        // 2-point partitions
                      grid_case{10'000, 100, 10, 2},    // fine
                      grid_case{10'000, 1'000, 10, 3},  // medium
                      grid_case{10'000, 5'000, 10, 2},  // two partitions
                      grid_case{10'000, 10'000, 10, 2}, // single partition
                      grid_case{30'000, 300, 20, 4},    // more steps, 4 workers
                      grid_case{8'192, 256, 7, 1}));    // single worker

TEST(Futurized, TaskCountMatchesFormula) {
  params p;
  p.total_points = 5'000;
  p.partition_size = 250;
  p.time_steps = 8;
  thread_manager tm(test_config(2));
  tm.reset_counters();
  run_futurized(tm, p);
  tm.wait_idle();  // drain the final tasks' accounting
  const auto totals = tm.counter_totals();
  EXPECT_EQ(totals.tasks_executed, p.num_tasks());
}


TEST(Futurized, WindowedConstructionMatchesUnbounded) {
  // max_steps_in_flight bounds memory but must not change results.
  params p;
  p.total_points = 10'000;
  p.partition_size = 500;
  p.time_steps = 25;
  thread_manager tm(test_config(3));

  const auto serial = run_serial(p);
  for (const std::size_t window : {1u, 2u, 5u}) {
    params wp = p;
    wp.max_steps_in_flight = window;
    const auto r = run_futurized(tm, wp);
    ASSERT_EQ(r.state.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(r.state[i], serial[i]) << "window " << window << " point " << i;
  }
}

TEST(Futurized, WindowedConstructionRunsAllTasks) {
  params p;
  p.total_points = 5'000;
  p.partition_size = 250;
  p.time_steps = 12;
  p.max_steps_in_flight = 2;
  thread_manager tm(test_config(2));
  tm.reset_counters();
  run_futurized(tm, p);
  tm.wait_idle();
  EXPECT_EQ(tm.counter_totals().tasks_executed, p.num_tasks());
}

TEST(Futurized, LinearProfileFixedInterior) {
  // u_i = i is harmonic away from the ring seam, so interior points far
  // from the wrap stay exactly fixed for a few steps.
  params p;
  p.total_points = 1'000;
  p.partition_size = 100;
  p.time_steps = 3;
  thread_manager tm(test_config(2));
  const auto r = run_futurized(tm, p);
  EXPECT_DOUBLE_EQ(r.state[500], 500.0);
  EXPECT_NE(r.state[0], 0.0);  // the seam diffuses immediately
}

}  // namespace
}  // namespace gran::stencil
