// Tests for the cooperative timer service (sync/timer_service.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "async/gran.hpp"
#include "sync/timer_service.hpp"
#include "util/timer.hpp"

namespace gran {
namespace {

using namespace std::chrono_literals;

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

TEST(TimerService, TaskSleepsAtLeastTheDuration) {
  thread_manager tm(test_config(2));
  auto f = async([] {
    const auto t0 = std::chrono::steady_clock::now();
    this_task::sleep_for(30ms);
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  });
  EXPECT_GE(f.get(), 29);  // allow 1ms clock granularity slack
}

TEST(TimerService, WorkerStaysUsableWhileTaskSleeps) {
  // The whole point of cooperative sleep: one worker, a sleeping task, and
  // other tasks still make progress during the sleep.
  thread_manager tm(test_config(1));
  std::atomic<int> progressed{0};
  auto sleeper = async([&] {
    this_task::sleep_for(50ms);
    return progressed.load();
  });
  std::this_thread::sleep_for(5ms);  // let the sleeper park
  for (int i = 0; i < 100; ++i) tm.spawn([&progressed] { ++progressed; });
  // All 100 must run to completion *before* the sleeper returns.
  EXPECT_EQ(sleeper.get(), 100);
}

TEST(TimerService, MultipleSleepersWakeInDeadlineOrder) {
  thread_manager tm(test_config(2));
  std::atomic<int> order{0};
  std::atomic<int> pos_long{-1}, pos_short{-1};
  auto long_sleep = async([&] {
    this_task::sleep_for(60ms);
    pos_long = order++;
  });
  auto short_sleep = async([&] {
    this_task::sleep_for(15ms);
    pos_short = order++;
  });
  long_sleep.wait();
  short_sleep.wait();
  EXPECT_LT(pos_short.load(), pos_long.load());
}

TEST(TimerService, PastDeadlineReturnsImmediately) {
  thread_manager tm(test_config(1));
  auto f = async([] {
    stopwatch w;
    this_task::sleep_until(std::chrono::steady_clock::now() - 10ms);
    return w.elapsed_ns();
  });
  EXPECT_LT(f.get(), 20'000'000);  // well under 20ms: no actual parking
}

TEST(TimerService, ExternalThreadSleepIsPlainBlocking) {
  stopwatch w;
  timer_service::global().sleep_for(10ms);
  EXPECT_GE(w.elapsed_ns(), 9'000'000);
}

TEST(TimerService, ManyConcurrentSleepers) {
  thread_manager tm(test_config(4));
  std::atomic<int> woken{0};
  std::vector<future<void>> fs;
  for (int i = 0; i < 50; ++i)
    fs.push_back(async([&woken, i] {
      this_task::sleep_for(std::chrono::milliseconds(5 + i % 7));
      ++woken;
    }));
  when_all(fs).wait();
  EXPECT_EQ(woken.load(), 50);
  EXPECT_EQ(timer_service::global().pending(), 0u);
}


// --- timed future waits ---------------------------------------------------------

TEST(TimedFutureWait, TimeoutWhenNeverSet) {
  thread_manager tm(test_config(2));
  promise<int> p;
  future<int> f = p.get_future();
  // Inside a task (cooperative timed wait):
  auto task_result = async([f] { return f.wait_for(20ms); });
  EXPECT_EQ(task_result.get(), std::future_status::timeout);
  // From the external main thread:
  EXPECT_EQ(f.wait_for(10ms), std::future_status::timeout);
  p.set_value(1);  // cleanup
}

TEST(TimedFutureWait, ReadyBeforeDeadline) {
  thread_manager tm(test_config(2));
  promise<int> p;
  future<int> f = p.get_future();
  auto waiter = async([f] { return f.wait_for(500ms); });
  std::this_thread::sleep_for(10ms);
  p.set_value(42);
  EXPECT_EQ(waiter.get(), std::future_status::ready);
  EXPECT_EQ(f.get(), 42);
}

TEST(TimedFutureWait, AlreadyReadyReturnsImmediately) {
  thread_manager tm(test_config(1));
  auto f = make_ready_future<int>(7);
  stopwatch w;
  EXPECT_EQ(f.wait_for(1000ms), std::future_status::ready);
  EXPECT_LT(w.elapsed_ns(), 100'000'000);
}

TEST(TimedFutureWait, ExternalThreadReadyBeforeDeadline) {
  thread_manager tm(test_config(1));
  promise<int> p;
  future<int> f = p.get_future();
  std::thread setter([&] {
    std::this_thread::sleep_for(15ms);
    p.set_value(5);
  });
  EXPECT_EQ(f.wait_for(2000ms), std::future_status::ready);
  setter.join();
}

TEST(TimedFutureWait, TimeoutThenValueStillUsable) {
  thread_manager tm(test_config(2));
  promise<int> p;
  future<int> f = p.get_future();
  auto r = async([f] {
    const auto first = f.wait_for(5ms);   // times out
    const int v = f.get();                // then blocks until the value
    return std::make_pair(first, v);
  });
  std::this_thread::sleep_for(30ms);
  p.set_value(9);
  const auto [status, value] = r.get();
  EXPECT_EQ(status, std::future_status::timeout);
  EXPECT_EQ(value, 9);
}

TEST(TimedFutureWait, StressRacingSettersAndDeadlines) {
  // Timer wake and value-set race each other across many iterations; any
  // stale waiter entry or ticket mishandling shows up as a hang or UAF
  // (run under ASan/TSan configurations too).
  thread_manager tm(test_config(2));
  for (int round = 0; round < 100; ++round) {
    promise<int> p;
    future<int> f = p.get_future();
    auto waiter = async([f] { return f.wait_for(std::chrono::microseconds(500)); });
    if (round % 2 == 0) p.set_value(round);
    const auto status = waiter.get();
    if (round % 2 == 0) {
      EXPECT_EQ(f.get(), round);
    } else {
      EXPECT_EQ(status, std::future_status::timeout);
      p.set_value(round);  // keep the state sane
    }
  }
}

}  // namespace
}  // namespace gran
