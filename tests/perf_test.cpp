// Tests for the performance-counter framework (src/perf): path parsing,
// registry operations, snapshot/interval semantics.
#include <gtest/gtest.h>

#include "perf/counters.hpp"
#include "perf/report.hpp"
#include "perf/sampler.hpp"

#include <sstream>

namespace gran::perf {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { registry::instance().remove_prefix("/test"); }
  void TearDown() override { registry::instance().remove_prefix("/test"); }
};

// --- counter_path ------------------------------------------------------------

TEST(CounterPath, ParsesSimple) {
  const auto p = counter_path::parse("/threads/count/cumulative");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->object, "threads");
  EXPECT_EQ(p->instance, "");
  EXPECT_EQ(p->name, "count/cumulative");
  EXPECT_EQ(p->str(), "/threads/count/cumulative");
}

TEST(CounterPath, ParsesInstance) {
  const auto p = counter_path::parse("/threads{worker#3}/time/average");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->object, "threads");
  EXPECT_EQ(p->instance, "worker#3");
  EXPECT_EQ(p->name, "time/average");
  EXPECT_EQ(p->str(), "/threads{worker#3}/time/average");
}

TEST(CounterPath, NestedSlashesStayInName) {
  // Everything after the object segment belongs to the counter name.
  const auto p = counter_path::parse("/a/b/c/d");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->object, "a");
  EXPECT_EQ(p->instance, "");
  EXPECT_EQ(p->name, "b/c/d");
  EXPECT_EQ(p->str(), "/a/b/c/d");
}

TEST(CounterPath, EmptyInstanceBraces) {
  // `{}` parses as an empty instance; str() canonicalizes it away.
  const auto p = counter_path::parse("/threads{}/name");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->object, "threads");
  EXPECT_EQ(p->instance, "");
  EXPECT_EQ(p->name, "name");
  EXPECT_EQ(p->str(), "/threads/name");
}

TEST(CounterPath, MissingClosingBrace) {
  EXPECT_FALSE(counter_path::parse("/threads{worker#1").has_value());
  EXPECT_FALSE(counter_path::parse("/threads{worker#1/name").has_value());
}

TEST(CounterPath, RejectsMalformed) {
  EXPECT_FALSE(counter_path::parse("").has_value());
  EXPECT_FALSE(counter_path::parse("threads/count").has_value());  // no leading /
  EXPECT_FALSE(counter_path::parse("/threads").has_value());       // no name
  EXPECT_FALSE(counter_path::parse("/threads{worker/name").has_value());  // open brace
  EXPECT_FALSE(counter_path::parse("/threads/").has_value());      // empty name
  EXPECT_FALSE(counter_path::parse("/{x}/name").has_value());      // empty object
}

// --- registry -----------------------------------------------------------------

TEST_F(RegistryTest, AddQueryRemove) {
  auto& reg = registry::instance();
  int value = 10;
  reg.add("/test/counter", counter_kind::monotonic, "a test counter",
          [&value] { return static_cast<double>(value); });
  const auto v = reg.query("/test/counter");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->value, 10.0);
  EXPECT_GT(v->timestamp_ns, 0);
  value = 20;
  EXPECT_EQ(reg.value_or("/test/counter", -1), 20.0);
  EXPECT_TRUE(reg.remove("/test/counter"));
  EXPECT_FALSE(reg.remove("/test/counter"));
  EXPECT_FALSE(reg.query("/test/counter").has_value());
  EXPECT_EQ(reg.value_or("/test/counter", -1), -1.0);
}

TEST_F(RegistryTest, ListByPrefix) {
  auto& reg = registry::instance();
  reg.add("/test/a", counter_kind::gauge, "", [] { return 1.0; });
  reg.add("/test/b", counter_kind::gauge, "", [] { return 2.0; });
  reg.add("/test2/c", counter_kind::gauge, "", [] { return 3.0; });
  const auto listed = reg.list("/test/");
  EXPECT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "/test/a");
  reg.remove_prefix("/test2");
  EXPECT_TRUE(reg.list("/test2").empty());
}

TEST_F(RegistryTest, KindAndDescription) {
  auto& reg = registry::instance();
  reg.add("/test/rate", counter_kind::rate, "a rate", [] { return 0.5; });
  EXPECT_EQ(reg.kind_of("/test/rate"), counter_kind::rate);
  EXPECT_EQ(reg.describe("/test/rate"), "a rate");
  EXPECT_FALSE(reg.kind_of("/test/absent").has_value());
  EXPECT_TRUE(reg.describe("/test/absent").empty());
}

TEST_F(RegistryTest, ReplaceRegistration) {
  auto& reg = registry::instance();
  reg.add("/test/x", counter_kind::gauge, "v1", [] { return 1.0; });
  reg.add("/test/x", counter_kind::gauge, "v2", [] { return 2.0; });
  EXPECT_EQ(reg.value_or("/test/x", 0), 2.0);
  EXPECT_EQ(reg.describe("/test/x"), "v2");
}

TEST_F(RegistryTest, QueryAllByPrefix) {
  auto& reg = registry::instance();
  reg.add("/test/a", counter_kind::gauge, "", [] { return 1.0; });
  reg.add("/test/b", counter_kind::monotonic, "", [] { return 2.0; });
  reg.add("/test2/c", counter_kind::gauge, "", [] { return 3.0; });

  const auto all = reg.query_all("/test/");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "/test/a");
  EXPECT_EQ(all[0].second.value, 1.0);
  EXPECT_EQ(all[1].first, "/test/b");
  EXPECT_EQ(all[1].second.value, 2.0);
  // One batch = one shared timestamp across all sampled counters.
  EXPECT_EQ(all[0].second.timestamp_ns, all[1].second.timestamp_ns);
  EXPECT_GT(all[0].second.timestamp_ns, 0);

  EXPECT_TRUE(reg.query_all("/nonexistent").empty());
  reg.remove_prefix("/test2");
}

TEST_F(RegistryTest, QueryAllSamplesOutsideLock) {
  // A counter whose sample fn re-enters the registry must not deadlock.
  auto& reg = registry::instance();
  reg.add("/test/reentrant", counter_kind::gauge, "",
          [&reg] { return reg.value_or("/test/plain", -1.0); });
  reg.add("/test/plain", counter_kind::gauge, "", [] { return 7.0; });
  const auto all = reg.query_all("/test");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].second.value, 7.0);   // /test/plain
  EXPECT_EQ(all[1].second.value, 7.0);   // /test/reentrant via nested query
}

// --- snapshot / interval ----------------------------------------------------------

TEST_F(RegistryTest, SnapshotCaptures) {
  auto& reg = registry::instance();
  double v = 5.0;
  reg.add("/test/mono", counter_kind::monotonic, "", [&v] { return v; });
  const auto snap = snapshot::capture({"/test"});
  EXPECT_TRUE(snap.has("/test/mono"));
  EXPECT_EQ(snap.value("/test/mono"), 5.0);
  EXPECT_FALSE(snap.has("/nonexistent"));
  EXPECT_EQ(snap.value("/nonexistent", -3.0), -3.0);
}

TEST_F(RegistryTest, IntervalDiffsMonotonicKeepsGauge) {
  auto& reg = registry::instance();
  double mono = 100.0, gauge = 7.0;
  reg.add("/test/mono", counter_kind::monotonic, "", [&mono] { return mono; });
  reg.add("/test/gauge", counter_kind::gauge, "", [&gauge] { return gauge; });

  const auto before = snapshot::capture({"/test"});
  mono = 150.0;
  gauge = 9.0;
  const auto after = snapshot::capture({"/test"});

  const interval delta(before, after);
  EXPECT_EQ(delta.value("/test/mono"), 50.0);   // differenced
  EXPECT_EQ(delta.value("/test/gauge"), 9.0);   // end value
  EXPECT_EQ(delta.delta("/test/gauge"), 2.0);   // raw difference on request
  EXPECT_GE(delta.span_ns(), 0);
}

TEST_F(RegistryTest, CapturePathsSkipsUnknown) {
  auto& reg = registry::instance();
  reg.add("/test/known", counter_kind::gauge, "", [] { return 1.0; });
  const auto snap = snapshot::capture_paths({"/test/known", "/test/unknown"});
  EXPECT_TRUE(snap.has("/test/known"));
  EXPECT_FALSE(snap.has("/test/unknown"));
}


// --- report -------------------------------------------------------------------

TEST_F(RegistryTest, DumpCsv) {
  auto& reg = registry::instance();
  reg.add("/test/x", counter_kind::monotonic, "", [] { return 5.0; });
  reg.add("/test/y", counter_kind::gauge, "", [] { return 2.5; });
  std::ostringstream os;
  dump_csv(os, "/test");
  EXPECT_EQ(os.str(), "counter,value\n/test/x,5\n/test/y,2.5\n");
}

TEST_F(RegistryTest, DumpTableContainsDescriptions) {
  auto& reg = registry::instance();
  reg.add("/test/z", counter_kind::gauge, "the z counter", [] { return 1.0; });
  std::ostringstream os;
  dump_table(os, "/test");
  EXPECT_NE(os.str().find("/test/z"), std::string::npos);
  EXPECT_NE(os.str().find("the z counter"), std::string::npos);
}

TEST_F(RegistryTest, DumpIntervalCsv) {
  auto& reg = registry::instance();
  double mono = 10.0;
  reg.add("/test/m", counter_kind::monotonic, "", [&mono] { return mono; });
  const auto before = snapshot::capture({"/test"});
  mono = 25.0;
  const auto after = snapshot::capture({"/test"});
  const interval delta(before, after);
  std::ostringstream os;
  dump_interval_csv(os, delta, before);
  EXPECT_NE(os.str().find("/test/m,15"), std::string::npos);
}

}  // namespace
}  // namespace gran::perf

