// Randomized-DAG property test: generate pseudo-random dependency graphs,
// execute them through dataflow() on the runtime, and compare every node's
// value against a sequential topological evaluation. Any scheduling bug that
// runs a node before its inputs, loses a completion, or corrupts a value
// changes the final hashes.
//
// Structure comes from the shared splitmix64 helpers (util/rng.hpp) — the
// same hash the graph::pattern::random generator and the simulator's jitter
// use — so a seed printed by a failure replays identically everywhere. Set
// GRAN_FUZZ_SEED to re-run every case under one specific seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "async/gran.hpp"
#include "util/rng.hpp"

namespace gran {
namespace {

struct dag {
  // deps[i] lists nodes < i this node consumes (possibly empty).
  std::vector<std::vector<std::size_t>> deps;
};

dag make_random_dag(std::size_t nodes, std::uint64_t seed) {
  dag g;
  g.deps.resize(nodes);
  for (std::size_t i = 1; i < nodes; ++i) {
    const std::size_t fanin = mix64(seed ^ i) % 4;  // 0..3 inputs
    for (std::size_t k = 0; k < fanin; ++k)
      g.deps[i].push_back(mix64(seed ^ (i * 131 + k)) % i);
  }
  return g;
}

// Node function: combines the node id with its input values.
std::uint64_t node_value(std::size_t i, const std::vector<std::uint64_t>& inputs) {
  std::uint64_t acc = mix64(i + 1);
  for (const std::uint64_t v : inputs) acc = mix64(acc ^ v);
  return acc;
}

std::vector<std::uint64_t> evaluate_sequential(const dag& g) {
  std::vector<std::uint64_t> values(g.deps.size());
  for (std::size_t i = 0; i < g.deps.size(); ++i) {
    std::vector<std::uint64_t> inputs;
    for (const std::size_t d : g.deps[i]) inputs.push_back(values[d]);
    values[i] = node_value(i, inputs);
  }
  return values;
}

std::vector<std::uint64_t> evaluate_dataflow(thread_manager& tm, const dag& g) {
  (void)tm;  // dataflow_all resolves the default manager, which is `tm`
  std::vector<future<std::uint64_t>> futures(g.deps.size());
  for (std::size_t i = 0; i < g.deps.size(); ++i) {
    std::vector<future<std::uint64_t>> inputs;
    for (const std::size_t d : g.deps[i]) inputs.push_back(futures[d]);
    futures[i] = dataflow_all(
        [i](const std::vector<future<std::uint64_t>>& in) {
          std::vector<std::uint64_t> values;
          values.reserve(in.size());
          for (const auto& f : in) values.push_back(f.get());
          return node_value(i, values);
        },
        std::move(inputs));
  }
  when_all(futures).wait();
  std::vector<std::uint64_t> out;
  out.reserve(futures.size());
  for (const auto& f : futures) out.push_back(f.get());
  return out;
}

struct fuzz_case {
  std::size_t nodes;
  int workers;
  std::uint64_t seed;
};

class DagFuzz : public ::testing::TestWithParam<fuzz_case> {};

TEST_P(DagFuzz, DataflowMatchesSequentialEvaluation) {
  const auto [nodes, workers, param_seed] = GetParam();
  // GRAN_FUZZ_SEED overrides every case's seed for replaying a failure.
  const std::uint64_t seed = fuzz_seed(param_seed);
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  const dag g = make_random_dag(nodes, seed);
  const auto expected = evaluate_sequential(g);
  const auto actual = evaluate_dataflow(tm, g);

  ASSERT_EQ(actual.size(), expected.size()) << "replay with GRAN_FUZZ_SEED=" << seed;
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i])
        << "node " << i << "; replay with GRAN_FUZZ_SEED=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DagFuzz,
    ::testing::Values(fuzz_case{50, 1, 1}, fuzz_case{50, 4, 2}, fuzz_case{500, 2, 3},
                      fuzz_case{500, 4, 4}, fuzz_case{2'000, 3, 5},
                      fuzz_case{2'000, 4, 6}, fuzz_case{5'000, 2, 7},
                      fuzz_case{5'000, 4, 8}, fuzz_case{500, 8, 9},
                      fuzz_case{1'000, 4, 10}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_w" +
             std::to_string(info.param.workers) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(DagFuzz, ManySeedsSmallGraphs) {
  // Quick sweep of many structures on a fixed small size; the base seed
  // shifts with GRAN_FUZZ_SEED so a reported failure replays exactly.
  scheduler_config cfg;
  cfg.num_workers = 3;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  const std::uint64_t base = fuzz_seed(100);
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    const dag g = make_random_dag(120, seed);
    ASSERT_EQ(evaluate_dataflow(tm, g), evaluate_sequential(g))
        << "replay with GRAN_FUZZ_SEED=" << seed;
  }
}

}  // namespace
}  // namespace gran
