// Tests for the offline trace-analysis engine (src/perf/analysis.*): unit
// tests on hand-built event streams with known wait/exec/critical-path
// answers, the binary dump round-trip, and end-to-end checks on real graph
// runs (chain critical path, Eq. 1 vs live counters, spawned cross-check).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

// Sanitizer instrumentation slows the runtime ~10x while the calibrated
// spin kernels keep their wall-clock duration, so timing-ratio assertions
// that compare workload time against total wall need to stand down.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GRAN_TEST_SANITIZED 1
#else
#define GRAN_TEST_SANITIZED 0
#endif

#include "graph/executor.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/analysis.hpp"
#include "perf/trace.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

using perf::trace_event;
using perf::trace_kind;

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

// The tracer is process-global state: every test leaves it disabled & empty.
class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    auto& t = perf::tracer::instance();
    t.disable();
    t.set_export_path("");
    t.clear();
  }
};

trace_event ev(std::uint64_t ticks, trace_kind k, std::uint16_t worker,
               std::uint64_t arg = 0, std::uint32_t arg2 = 0,
               const char* name = nullptr) {
  trace_event e;
  e.ticks = ticks;
  e.kind = k;
  e.worker = worker;
  e.arg = arg;
  e.arg2 = arg2;
  e.name = name;
  return e;
}

perf::trace_dump make_dump(std::vector<perf::trace_lane> lanes,
                           double ns_per_tick = 1.0) {
  perf::trace_dump d;
  d.lanes = std::move(lanes);
  d.ns_per_tick = ns_per_tick;
  d.names = std::make_shared<const std::vector<std::string>>();
  return d;
}

const perf::task_record* find_task(const perf::analysis_result& r,
                                   std::uint64_t id) {
  for (const auto& t : r.tasks)
    if (t.id == id) return &t;
  return nullptr;
}

// --- hand-built streams ------------------------------------------------------

TEST_F(AnalysisTest, EmptyDumpFails) {
  const auto r = perf::analyze_trace(make_dump({}));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST_F(AnalysisTest, WaitExecSuspendDecomposition) {
  // Task 1: spawned externally at t=10, runs 30..80 on w0, done.
  // Task 2: spawned externally at t=100, first phase 110..130 (yield),
  //         second phase 150..170 (done) — exec 40, suspend 20, wait 10.
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(30, trace_kind::task_begin, 0, 1, 0, "a"),
      ev(80, trace_kind::task_end, 0, 1),
      ev(110, trace_kind::task_begin, 0, 2, 0, "b"),
      ev(130, trace_kind::phase_end, 0, 2, 1),
      ev(150, trace_kind::phase_begin, 0, 2),
      ev(170, trace_kind::task_end, 0, 2),
  };
  perf::trace_lane ext;
  ext.worker = perf::external_worker;
  ext.events = {
      ev(10, trace_kind::task_enqueue, perf::external_worker, 1,
         perf::external_worker),
      ev(100, trace_kind::task_enqueue, perf::external_worker, 2,
         perf::external_worker),
  };
  const auto r = perf::analyze_trace(make_dump({w0, ext}));
  ASSERT_TRUE(r.ok) << r.error;

  const auto* t1 = find_task(r, 1);
  ASSERT_NE(t1, nullptr);
  EXPECT_DOUBLE_EQ(t1->wait_ns, 20.0);
  EXPECT_DOUBLE_EQ(t1->exec_ns, 50.0);
  EXPECT_DOUBLE_EQ(t1->suspend_ns, 0.0);
  EXPECT_EQ(t1->phases, 1);
  EXPECT_TRUE(t1->complete);
  EXPECT_STREQ(t1->name, "a");

  const auto* t2 = find_task(r, 2);
  ASSERT_NE(t2, nullptr);
  EXPECT_DOUBLE_EQ(t2->wait_ns, 10.0);
  EXPECT_DOUBLE_EQ(t2->exec_ns, 40.0);
  EXPECT_DOUBLE_EQ(t2->suspend_ns, 20.0);
  EXPECT_EQ(t2->phases, 2);

  // Eq. 1–3 from the stream: func = w0 span (170-30), exec = 90, nt = 2.
  EXPECT_DOUBLE_EQ(r.func_ns, 140.0);
  EXPECT_DOUBLE_EQ(r.exec_ns, 90.0);
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_DOUBLE_EQ(r.idle_rate, 50.0 / 140.0);
  EXPECT_DOUBLE_EQ(r.task_duration_ns, 45.0);
  EXPECT_DOUBLE_EQ(r.task_overhead_ns, 25.0);

  ASSERT_TRUE(r.waits_valid) << r.waits_error;
  EXPECT_EQ(r.waits_counted, 2u);
  EXPECT_DOUBLE_EQ(r.wait_mean_ns, 15.0);
  EXPECT_DOUBLE_EQ(r.wait_max_ns, 20.0);
}

TEST_F(AnalysisTest, NsPerTickScalesDurations) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(100, trace_kind::task_end, 0, 1),
  };
  const auto r = perf::analyze_trace(make_dump({w0}, /*ns_per_tick=*/0.5));
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(find_task(r, 1)->exec_ns, 50.0);
  EXPECT_DOUBLE_EQ(r.wall_ns, 50.0);
}

TEST_F(AnalysisTest, CriticalPathThroughSpawnChain) {
  // w0 runs task 1 over [0,100]; at t=50 (inside that phase) it spawns
  // task 2, which runs [110,210]; at t=150 task 2 spawns task 3, which runs
  // [220,300]. Chain lengths: start2 = 50 (task 1's exec before the spawn),
  // end2 = 150; start3 = 50 + 40 = 90, end3 = 170 — the critical path, vs
  // end1 = 100.
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(50, trace_kind::task_enqueue, 0, 2, 0),
      ev(100, trace_kind::task_end, 0, 1),
      ev(110, trace_kind::task_begin, 0, 2),
      ev(150, trace_kind::task_enqueue, 0, 3, 0),
      ev(210, trace_kind::task_end, 0, 2),
      ev(220, trace_kind::task_begin, 0, 3),
      ev(300, trace_kind::task_end, 0, 3),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok) << r.error;

  EXPECT_DOUBLE_EQ(r.critical_path_ns, 170.0);
  ASSERT_EQ(r.critical_chain.size(), 3u);
  EXPECT_EQ(r.critical_chain[0], 1u);
  EXPECT_EQ(r.critical_chain[1], 2u);
  EXPECT_EQ(r.critical_chain[2], 3u);
  EXPECT_TRUE(find_task(r, 2)->has_parent);
  EXPECT_EQ(find_task(r, 2)->parent_id, 1u);
  EXPECT_EQ(find_task(r, 3)->parent_id, 2u);
  EXPECT_TRUE(find_task(r, 3)->on_critical_path);
  // The chain is ≤ wall by construction (disjoint wall intervals).
  EXPECT_LE(r.critical_path_ns, r.wall_ns);
}

TEST_F(AnalysisTest, IndependentTasksCriticalPathIsMaxDuration) {
  // Three roots with no provenance edges: the longest chain is one task.
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(50, trace_kind::task_end, 0, 1),
      ev(60, trace_kind::task_begin, 0, 2),
      ev(180, trace_kind::task_end, 0, 2),
      ev(190, trace_kind::task_begin, 0, 3),
      ev(260, trace_kind::task_end, 0, 3),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 120.0);  // task 2
  ASSERT_EQ(r.critical_chain.size(), 1u);
  EXPECT_EQ(r.critical_chain[0], 2u);
}

TEST_F(AnalysisTest, OutOfOrderLanesMergedByTimestamp) {
  // Lane order in the dump is the *reverse* of time order, and the steal /
  // enqueue / begin events for task 7 are spread over three lanes; the
  // merge must still produce enqueue(10) -> steal(20) -> begin(30).
  perf::trace_lane w1;
  w1.worker = 1;
  w1.events = {
      ev(20, trace_kind::steal, 1, 7, perf::steal_arg2(0, 1)),
      ev(30, trace_kind::task_begin, 1, 7),
      ev(90, trace_kind::task_end, 1, 7),
  };
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(5, trace_kind::task_begin, 0, 6),
      ev(10, trace_kind::task_enqueue, 0, 7, 0),
      ev(40, trace_kind::task_end, 0, 6),
  };
  const auto r = perf::analyze_trace(make_dump({w1, w0}));
  ASSERT_TRUE(r.ok) << r.error;

  const auto* t7 = find_task(r, 7);
  ASSERT_NE(t7, nullptr);
  EXPECT_DOUBLE_EQ(t7->wait_ns, 20.0);
  EXPECT_TRUE(t7->stolen);
  EXPECT_DOUBLE_EQ(t7->queue_wait_ns, 10.0);   // enqueue -> steal
  EXPECT_DOUBLE_EQ(t7->steal_latency_ns, 10.0);  // steal -> first run
  EXPECT_EQ(r.stolen_waits, 1u);
  // Provenance: task 6's phase on w0 covers the enqueue at t=10.
  EXPECT_TRUE(t7->has_parent);
  EXPECT_EQ(t7->parent_id, 6u);
}

TEST_F(AnalysisTest, WraparoundRefusesWaitAttribution) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.dropped = 5;
  w0.events = {
      ev(10, trace_kind::task_enqueue, 0, 1, 0),
      ev(30, trace_kind::task_begin, 0, 1),
      ev(80, trace_kind::task_end, 0, 1),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.waits_valid);
  EXPECT_NE(r.waits_error.find("wraparound"), std::string::npos) << r.waits_error;
  EXPECT_EQ(r.total_dropped, 5u);

  // The rest of the analysis still runs...
  EXPECT_GT(r.exec_ns, 0.0);
  // ...and --force-waits overrides the refusal.
  perf::analysis_options force;
  force.force_wait_attribution = true;
  const auto rf = perf::analyze_trace(make_dump({w0}), force);
  EXPECT_TRUE(rf.waits_valid);
  EXPECT_EQ(rf.waits_counted, 1u);
}

TEST_F(AnalysisTest, NoEnqueueEventsRefusesWaits) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(50, trace_kind::task_end, 0, 1),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.waits_valid);
  EXPECT_NE(r.waits_error.find("task_enqueue"), std::string::npos);
}

TEST_F(AnalysisTest, ConcurrencyAndRunnableSweeps) {
  // Two overlapping phases: [10,100] on w0 and [50,150] on w1 over a wall
  // of 150 -> avg concurrency 190/150, max 2. Both tasks enqueue at 0, so
  // both sit runnable over [0,10).
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_enqueue, 0, 1, 0),
      ev(0, trace_kind::task_enqueue, 0, 2, 0),
      ev(10, trace_kind::task_begin, 0, 1),
      ev(100, trace_kind::task_end, 0, 1),
  };
  perf::trace_lane w1;
  w1.worker = 1;
  w1.events = {
      ev(50, trace_kind::task_begin, 1, 2),
      ev(150, trace_kind::task_end, 1, 2),
  };
  const auto r = perf::analyze_trace(make_dump({w0, w1}));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.max_concurrency, 2u);
  EXPECT_NEAR(r.avg_concurrency, 190.0 / 150.0, 1e-9);
  EXPECT_EQ(r.max_runnable, 2u);  // both spawned before either ran
}

TEST_F(AnalysisTest, GraphNodeProvenanceTagsTasks) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(5, trace_kind::graph_node, 0, 1, perf::pack_graph_node(3, 17)),
      ev(50, trace_kind::task_end, 0, 1),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  ASSERT_TRUE(r.ok);
  const auto* t = find_task(r, 1);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->has_graph_node);
  EXPECT_EQ(t->graph_step, 3u);
  EXPECT_EQ(t->graph_point, 17u);
}

TEST_F(AnalysisTest, SplitChildrenJoinParentsSpawnDag) {
  // Parent task 1 runs 10..100 on w0 and at t=50 splits: the task_split
  // event (arg = parent id, arg2 = split point) immediately precedes the
  // child's task_enqueue on the same lane. Child 2 runs on w1. The child
  // must bind to the parent through the split event — and keep that binding
  // even though the covering-phase rule would also resolve it.
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(10, trace_kind::task_begin, 0, 1),
      ev(50, trace_kind::task_split, 0, 1, 5000),
      ev(51, trace_kind::task_enqueue, 0, 2, 0),
      ev(100, trace_kind::task_end, 0, 1),
  };
  perf::trace_lane w1;
  w1.worker = 1;
  w1.events = {
      ev(60, trace_kind::task_begin, 1, 2),
      ev(90, trace_kind::task_end, 1, 2),
  };
  const auto r = perf::analyze_trace(make_dump({w0, w1}));
  ASSERT_TRUE(r.ok) << r.error;
  const auto* child = find_task(r, 2);
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(child->split_child);
  EXPECT_EQ(child->split_point, 5000u);
  ASSERT_TRUE(child->has_parent);
  EXPECT_EQ(child->parent_id, 1u);
  EXPECT_EQ(r.tasks_from_splits, 1u);
  ASSERT_FALSE(r.workers.empty());
  std::uint64_t splits = 0;
  for (const auto& w : r.workers) splits += w.splits;
  EXPECT_EQ(splits, 1u);
  // The split edge participates in the critical path DP like a spawn edge:
  // parent contributes its pre-split work to the child's chain.
  const auto* parent = find_task(r, 1);
  ASSERT_NE(parent, nullptr);
  EXPECT_TRUE(parent->on_critical_path);
}

TEST_F(AnalysisTest, ReportContainsCriticalPathLine) {
  perf::trace_lane w0;
  w0.worker = 0;
  w0.events = {
      ev(0, trace_kind::task_begin, 0, 1),
      ev(1000, trace_kind::task_end, 0, 1),
  };
  const auto r = perf::analyze_trace(make_dump({w0}));
  std::ostringstream os;
  perf::write_report(os, r);
  EXPECT_NE(os.str().find("critical path: "), std::string::npos);
  EXPECT_NE(os.str().find("% of wall"), std::string::npos);

  std::ostringstream csv;
  perf::write_task_csv(csv, r);
  EXPECT_NE(csv.str().find("task_id,"), std::string::npos);
}

// --- binary dump round-trip --------------------------------------------------

TEST_F(AnalysisTest, BinaryDumpRoundTrips) {
  auto& tr = perf::tracer::instance();
  tr.enable(1 << 10);
  perf::trace_ring* r0 = tr.ring(0);
  ASSERT_NE(r0, nullptr);
  perf::trace_emit_at(r0, 100, trace_kind::task_begin, 0, 42, 0, "alpha");
  perf::trace_emit_at(r0, 200, trace_kind::task_end, 0, 42);
  tr.emit_external(trace_kind::task_enqueue, 43, perf::external_worker);

  std::stringstream ss;
  tr.write_binary(ss);
  perf::trace_dump loaded;
  ASSERT_TRUE(perf::load_trace_binary(ss, loaded));

  ASSERT_EQ(loaded.lanes.size(), 2u);  // worker 0 + external
  EXPECT_EQ(loaded.lanes[0].worker, 0);
  EXPECT_EQ(loaded.lanes[1].worker, perf::external_worker);
  ASSERT_EQ(loaded.lanes[0].events.size(), 2u);
  EXPECT_EQ(loaded.lanes[0].events[0].ticks, 100u);
  EXPECT_EQ(loaded.lanes[0].events[0].arg, 42u);
  EXPECT_STREQ(loaded.lanes[0].events[0].name, "alpha");
  EXPECT_EQ(loaded.lanes[0].events[1].name, nullptr);
  ASSERT_EQ(loaded.lanes[1].events.size(), 1u);
  EXPECT_EQ(loaded.lanes[1].events[0].kind, trace_kind::task_enqueue);
  EXPECT_GT(loaded.ns_per_tick, 0.0);

  // A dump survives copies after the tracer is gone (owned string table).
  tr.clear();
  perf::trace_dump copy = loaded;
  EXPECT_STREQ(copy.lanes[0].events[0].name, "alpha");
}

TEST_F(AnalysisTest, LoadRejectsGarbage) {
  std::stringstream ss("definitely not a trace dump");
  perf::trace_dump d;
  EXPECT_FALSE(perf::load_trace_binary(ss, d));
  EXPECT_FALSE(perf::load_trace_binary(std::string("/nonexistent/path.bin"), d));
}

// --- end-to-end on real graph runs -------------------------------------------

// Shared protocol: enable tracing BEFORE the manager exists (workers cache
// ring pointers at construction), run, stop() to quiesce the producers,
// capture counters, dump, destroy.
struct traced_run {
  perf::trace_dump dump;
  thread_manager::totals totals;
  graph::run_stats stats;
};

traced_run run_traced_graph(const graph::graph_spec& g, double grain_ns,
                            int workers) {
  // Kernel calibration is once-per-process on the caller's thread; pay it
  // before tracing starts so it doesn't stretch the traced wall time.
  (void)graph::calibrated_rates();
  auto& tr = perf::tracer::instance();
  tr.enable(1 << 18);
  graph::kernel_spec k;
  k.kind = graph::kernel_kind::busy_spin;
  k.grain_ns = grain_ns;

  traced_run out;
  {
    thread_manager tm(test_config(workers));
    out.stats = graph::run_graph(tm, g, k, 0);
    tm.stop();
    out.totals = tm.counter_totals();
  }
  out.dump = perf::tracer::instance().dump();
  tr.disable();
  return out;
}

TEST_F(AnalysisTest, SerialChainCriticalPathApproxSumOfDurations) {
  graph::graph_spec g;
  g.kind = graph::pattern::serial_chain;
  g.width = 1;
  g.steps = 100;
  // The chain must dominate the traced window (manager construction, DAG
  // build and stop() add a few ms of non-workload wall) or the
  // cp >= wall/workers bound below gets squeezed by fixed overhead.
  const traced_run run = run_traced_graph(g, /*grain_ns=*/200'000, /*workers=*/2);

  const auto r = perf::analyze_trace(run.dump);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.waits_valid) << r.waits_error;

  double exec_sum = 0;
  for (const auto& t : r.tasks) exec_sum += t.exec_ns;
  // A chain's critical path is the whole execution. Exact equality with
  // exec_sum is spoiled by OS preemption: a descheduled spin phase
  // stretches, its child was spawned early inside the stretched interval,
  // and the exec-weighted DP rightly keeps the stretched tail on the
  // parent — so the chain may end at such a task instead of the last link.
  // The bounds below hold regardless of that noise.
  EXPECT_GE(r.critical_chain.size(), 50u);
  EXPECT_LE(r.critical_path_ns, exec_sum * 1.0001);
  // At least half the nominal serial work (100 x 200us = 20 ms).
  EXPECT_GT(r.critical_path_ns, 0.5 * 100 * 200'000);
  // Acceptance bounds: cp ≤ wall always; cp ≥ wall/workers holds here
  // because a serial chain leaves no room for parallel speedup. Under TSan
  // the premise breaks — instrumentation stretches the non-workload wall
  // (manager construction, DAG build, stop) ~10x while the calibrated spin
  // keeps its wall-clock duration, so the chain stops dominating the
  // traced window and only the upper bound stays meaningful.
  EXPECT_LE(r.critical_path_ns, r.wall_ns * 1.0001);
#if !GRAN_TEST_SANITIZED
  EXPECT_GE(r.critical_path_ns,
            r.wall_ns / static_cast<double>(r.num_workers));
#endif
}

TEST_F(AnalysisTest, TrivialPatternCriticalPathApproxMaxDuration) {
  graph::graph_spec g;
  g.kind = graph::pattern::trivial;
  g.width = 64;
  g.steps = 1;
  const traced_run run = run_traced_graph(g, /*grain_ns=*/20'000, /*workers=*/2);

  const auto r = perf::analyze_trace(run.dump);
  ASSERT_TRUE(r.ok) << r.error;

  double max_exec = 0;
  for (const auto& t : r.tasks) max_exec = std::max(max_exec, t.exec_ns);
  // All roots, no edges: the longest chain is exactly the longest task
  // (external spawns carry no parent credit).
  EXPECT_NEAR(r.critical_path_ns, max_exec, max_exec * 1e-6);
  EXPECT_LE(r.critical_path_ns, r.wall_ns);
}

TEST_F(AnalysisTest, Eq1RecomputeWithinCountersOnGraphRun) {
  graph::graph_spec g;
  g.kind = graph::pattern::stencil1d;
  g.width = 16;
  g.steps = 20;
  // Busy enough that worker spans are dominated by kernel work: the trace
  // measures func as lane first->last event while the counter measures the
  // worker loop, and the fixed edge mismatch shrinks relative to the span.
  const traced_run run = run_traced_graph(g, /*grain_ns=*/100'000, /*workers=*/2);

  const auto r = perf::analyze_trace(run.dump);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.total_dropped, 0u);

  const auto& c = run.totals;
  ASSERT_GT(c.func_ns, 0u);
  const double c_idle = static_cast<double>(c.func_ns - std::min(c.func_ns, c.exec_ns)) /
                        static_cast<double>(c.func_ns);
  const double c_td = static_cast<double>(c.exec_ns) /
                      static_cast<double>(c.tasks_executed);

  // Acceptance: events alone reproduce the counter-based Eq. 1–3 within
  // 5%. exec is tick-exact (same timestamps feed both); func differs only
  // at the lane-span edges, so it gets 5% relative and the idle-rate —
  // a ratio of the two — 5 percentage points.
  EXPECT_NEAR(r.exec_ns, static_cast<double>(c.exec_ns), 0.01 * c.exec_ns);
  EXPECT_NEAR(r.func_ns, static_cast<double>(c.func_ns), 0.05 * c.func_ns);
  EXPECT_NEAR(r.idle_rate, c_idle, 0.05);
  EXPECT_NEAR(r.task_duration_ns, c_td, 0.05 * c_td);

  // Every task ran and completed in the trace.
  EXPECT_EQ(r.tasks_completed, run.stats.tasks);

  // Critical-path sanity on a parallel pattern: bounded by wall, and at
  // least the longest single task.
  double max_exec = 0;
  for (const auto& t : r.tasks) max_exec = std::max(max_exec, t.exec_ns);
  EXPECT_LE(r.critical_path_ns, r.wall_ns);
  EXPECT_GE(r.critical_path_ns, max_exec * (1 - 1e-9));
}

TEST_F(AnalysisTest, SpawnedCounterMatchesEnqueueEvents) {
  graph::graph_spec g;
  g.kind = graph::pattern::spread;
  g.width = 12;
  g.steps = 8;
  const traced_run run = run_traced_graph(g, /*grain_ns=*/5'000, /*workers=*/2);

  ASSERT_EQ(run.dump.total_dropped(), 0u);
  std::uint64_t enqueues = 0;
  for (const auto& lane : run.dump.lanes)
    for (const auto& e : lane.events)
      if (e.kind == trace_kind::task_enqueue) ++enqueues;

  // record_spawn bumps the counter and emits the event from the same call,
  // so with no ring drops they must agree exactly.
  EXPECT_EQ(enqueues, run.totals.tasks_spawned);
  EXPECT_EQ(run.totals.tasks_spawned, run.stats.tasks);

  // Graph-node provenance reached the analyzer for every task.
  const auto r = perf::analyze_trace(run.dump);
  ASSERT_TRUE(r.ok);
  std::uint64_t tagged = 0;
  for (const auto& t : r.tasks)
    if (t.has_graph_node) ++tagged;
  EXPECT_EQ(tagged, run.stats.tasks);
}

}  // namespace
}  // namespace gran
