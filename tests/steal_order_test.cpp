// Tests for topology-aware victim selection and the stolen-local /
// stolen-remote counter split. The CI host may be a single-CPU VM, so every
// test forces its own worker count and a synthetic domain split
// (cfg.numa_domains) instead of relying on the host topology.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "perf/counters.hpp"
#include "threads/policy_work_stealing.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers, const std::string& policy,
                             const std::string& steal_order = "hier",
                             int domains = 0) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy = policy;
  cfg.steal_order = steal_order;
  cfg.numa_domains = domains;
  cfg.pin_workers = false;  // the CI host is oversubscribed
  return cfg;
}

// Spawns `n` short tasks from the (external) test thread and drains them.
void run_external_burst(thread_manager& tm, int n) {
  std::atomic<int> done{0};
  for (int i = 0; i < n; ++i)
    tm.spawn([&done] {
      volatile double x = 1.0;
      for (int k = 0; k < 500; ++k) x = x * 1.0000001 + 0.1;
      ++done;
    });
  tm.wait_idle();
  ASSERT_EQ(done.load(), n);
}

void expect_stolen_split_invariant(thread_manager& tm) {
  auto& reg = perf::registry::instance();
  const double stolen = reg.value_or("/threads/count/stolen", -1);
  const double local = reg.value_or("/threads/count/stolen-local", -1);
  const double remote = reg.value_or("/threads/count/stolen-remote", -1);
  ASSERT_GE(stolen, 0.0);
  ASSERT_GE(local, 0.0);
  ASSERT_GE(remote, 0.0);
  EXPECT_EQ(local + remote, stolen);

  const auto tot = tm.counter_totals();
  EXPECT_EQ(static_cast<double>(tot.tasks_stolen), stolen);
  EXPECT_LE(tot.tasks_stolen_remote, tot.tasks_stolen);

  // Per-worker instances decompose the aggregate split exactly.
  for (const char* name : {"count/stolen-local", "count/stolen-remote"}) {
    const double aggregate = reg.value_or(std::string("/threads/") + name, -1);
    double sum = 0;
    for (int w = 0; w < tm.num_workers(); ++w)
      sum += reg.value_or("/threads{worker#" + std::to_string(w) + "}/" + name, 0);
    EXPECT_EQ(sum, aggregate) << name;
  }
}

TEST(StealOrder, HierTiersCoverAllVictimsOnce) {
  thread_manager tm(test_config(6, "work-stealing-lifo", "hier", /*domains=*/2));
  auto* policy = dynamic_cast<work_stealing_policy*>(&tm.policy());
  ASSERT_NE(policy, nullptr);

  // Unpinned workers have no core identity, so the SMT tier is empty; with
  // the even 2-domain spread workers 0-2 are domain 0, workers 3-5 domain 1.
  for (int w = 0; w < tm.num_workers(); ++w) {
    const auto& order = policy->steal_order(w);
    ASSERT_EQ(order.size(), 5u) << "worker " << w;
    std::vector<bool> seen(static_cast<std::size_t>(tm.num_workers()), false);
    seen[static_cast<std::size_t>(w)] = true;
    for (const int v : order) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate victim " << v;
      seen[static_cast<std::size_t>(v)] = true;
    }
    const int* ends = policy->steal_tier_ends(w);
    EXPECT_EQ(ends[0], 0);  // no SMT siblings when unpinned
    EXPECT_EQ(ends[2], 5);
    // Tier 1 holds exactly the same-domain peers, tier 2 the rest.
    const int my_domain = tm.worker(w).numa_node;
    for (int i = 0; i < ends[1]; ++i)
      EXPECT_EQ(tm.worker(order[static_cast<std::size_t>(i)]).numa_node, my_domain);
    for (int i = ends[1]; i < ends[2]; ++i)
      EXPECT_NE(tm.worker(order[static_cast<std::size_t>(i)]).numa_node, my_domain);
  }
}

TEST(StealOrder, StealDistanceFromWorkerIdentity) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "hier", /*domains=*/2));
  // Unpinned: core == -1, so distance is 1 within a domain, 2 across.
  EXPECT_EQ(tm.steal_distance(0, 1), 1);
  EXPECT_EQ(tm.steal_distance(0, 3), 2);
  EXPECT_EQ(tm.steal_distance(3, 2), 1);
}

TEST(StealOrder, InvariantHoldsWorkStealingHier) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "hier", /*domains=*/2));
  tm.reset_counters();
  run_external_burst(tm, 4000);
  expect_stolen_split_invariant(tm);
}

TEST(StealOrder, InvariantHoldsWorkStealingFlat) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "flat", /*domains=*/2));
  tm.reset_counters();
  run_external_burst(tm, 4000);
  expect_stolen_split_invariant(tm);
}

TEST(StealOrder, InvariantHoldsPriorityLocal) {
  thread_manager tm(test_config(4, "priority-local-fifo", "", /*domains=*/2));
  tm.reset_counters();
  run_external_burst(tm, 4000);
  expect_stolen_split_invariant(tm);
}

TEST(StealOrder, RemoteStealsAreCountedAcrossDomains) {
  // Two domains, all work staged by an external thread: with enough tasks
  // and workers some cross-domain migration is effectively certain. Retry a
  // few bursts to keep the test deterministic-enough without flakiness.
  thread_manager tm(test_config(4, "priority-local-fifo", "", /*domains=*/2));
  tm.reset_counters();
  for (int round = 0; round < 20; ++round) {
    run_external_burst(tm, 2000);
    if (tm.counter_totals().tasks_stolen > 0) break;
  }
  const auto tot = tm.counter_totals();
  EXPECT_GT(tot.tasks_stolen, 0u);
  expect_stolen_split_invariant(tm);
}

TEST(StealOrder, SingleDomainNeverCountsRemote) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "hier", /*domains=*/1));
  tm.reset_counters();
  run_external_burst(tm, 4000);
  EXPECT_EQ(tm.counter_totals().tasks_stolen_remote, 0u);
  expect_stolen_split_invariant(tm);
}

TEST(StealOrder, UnknownOrderThrows) {
  EXPECT_THROW(thread_manager tm(test_config(2, "work-stealing-lifo", "sideways")),
               std::invalid_argument);
}

TEST(StealOrder, SpawnOnRunsHintedTasks) {
  for (const char* policy :
       {"work-stealing-lifo", "priority-local-fifo", "static-fifo",
        "channel-steal"}) {
    thread_manager tm(test_config(4, policy));
    std::atomic<int> done{0};
    for (int i = 0; i < 1000; ++i)
      tm.spawn_on(i % tm.num_workers(), [&done] { ++done; });
    // Out-of-range hints fall back to plain spawn.
    tm.spawn_on(-1, [&done] { ++done; });
    tm.spawn_on(99, [&done] { ++done; });
    tm.wait_idle();
    EXPECT_EQ(done.load(), 1002) << policy;
  }
}

TEST(StealOrder, SpawnOnFromInsideTask) {
  thread_manager tm(test_config(4, "work-stealing-lifo"));
  std::atomic<int> done{0};
  tm.spawn([&] {
    auto* mgr = thread_manager::current();
    for (int i = 0; i < 200; ++i)
      mgr->spawn_on(i % mgr->num_workers(), [&done] { ++done; });
  });
  tm.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(StealOrder, HomeWorkerForBlockCoversDomains) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "hier", /*domains=*/2));
  // Block b of N maps to domain b*D/N; round-robin within the domain.
  const int first = tm.home_worker_for_block(0, 8);
  const int last = tm.home_worker_for_block(7, 8);
  EXPECT_EQ(tm.worker(first).numa_node, 0);
  EXPECT_EQ(tm.worker(last).numa_node, 1);
  for (std::uint64_t b = 0; b < 8; ++b) {
    const int w = tm.home_worker_for_block(b, 8);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, tm.num_workers());
    EXPECT_EQ(tm.worker(w).numa_node, static_cast<int>(b * 2 / 8));
  }
  // Degenerate inputs stay in range.
  EXPECT_GE(tm.home_worker_for_block(0, 0), 0);
  EXPECT_LT(tm.home_worker_for_block(123, 1), tm.num_workers());
}

// Concurrency stress for TSan: external producers + on-worker spawns +
// hinted spawns against the hierarchical steal path.
TEST(StealOrder, ConcurrentProducersStress) {
  thread_manager tm(test_config(4, "work-stealing-lifo", "hier", /*domains=*/2));
  std::atomic<int> done{0};
  constexpr int per_producer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p)
    producers.emplace_back([&tm, &done, p] {
      for (int i = 0; i < per_producer; ++i) {
        if (i % 3 == 0)
          tm.spawn_on((p + i) % tm.num_workers(), [&done] { ++done; });
        else
          tm.spawn([&tm, &done] {
            tm.spawn_on(0, [&done] { ++done; });
            ++done;
          });
      }
    });
  for (auto& t : producers) t.join();
  tm.wait_idle();
  // i%3==0 spawns contribute 1 each; the rest contribute 2 each.
  int expected = 0;
  for (int i = 0; i < per_producer; ++i) expected += (i % 3 == 0) ? 1 : 2;
  EXPECT_EQ(done.load(), expected * 3);
  expect_stolen_split_invariant(tm);
}

}  // namespace
}  // namespace gran
