// Tests for lazy task splitting (algo/splittable.hpp), the closed-loop split
// controller (core/split_controller.hpp), and the simulator mirror
// (sim/split_sim.hpp): exactly-once execution under randomized concurrent
// splits, controller gate/supply semantics on synthetic traces, and
// native-vs-sim checksum agreement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "algo/splittable.hpp"
#include "core/split_controller.hpp"
#include "core/tuner.hpp"
#include "sim/machine_model.hpp"
#include "sim/split_sim.hpp"
#include "threads/thread_manager.hpp"
#include "util/rng.hpp"

namespace gran {
namespace {

scheduler_config workers_cfg(int n) {
  scheduler_config cfg;
  cfg.num_workers = n;
  cfg.pin_workers = false;
  return cfg;
}

// Forces the pressure gate open so gate-only demand (supply == 0) keeps
// splitting the range down to min_chunk regardless of live worker state —
// the harshest split schedule the controller can produce.
void force_gate_open(core::split_controller& ctl) {
  ctl.observe(/*idle_rate=*/0.9, /*pending_misses=*/10, /*pending_accesses=*/10);
  ASSERT_TRUE(ctl.gate_open());
}

TEST(SplitExactlyOnce, RandomizedConcurrentSplits) {
  const std::uint64_t seed = fuzz_seed(0x5eed5p11);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint64_t t = mix64(seed + static_cast<std::uint64_t>(trial));
    const int workers = 2 + static_cast<int>(t % 7);           // 2..8
    const std::size_t items = 20'000 + (mix64(t) % 30'000);    // 20k..50k
    thread_manager tm(workers_cfg(workers));

    core::split_options opts;
    opts.min_chunk = 16;
    opts.poll_iters = 8;  // aggressive polling: maximize split interleavings
    core::split_controller ctl(opts);
    force_gate_open(ctl);

    std::vector<std::atomic<std::uint8_t>> hits(items);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);

    algo::splittable_for(tm, ctl, 0, items, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      // Occasional extra work shakes up which task a thief sees running.
      if (mix64_combine(t, i) % 64 == 0) {
        volatile int spin = 0;
        while (spin < 100) spin = spin + 1;
      }
    });

    std::size_t misses = 0, dups = 0;
    for (auto& h : hits) {
      const auto n = h.load(std::memory_order_relaxed);
      misses += n == 0;
      dups += n > 1;
    }
    EXPECT_EQ(misses, 0u) << "seed=" << seed << " trial=" << trial;
    EXPECT_EQ(dups, 0u) << "seed=" << seed << " trial=" << trial;
    EXPECT_GT(tm.counter_totals().tasks_split, 0u)
        << "gate-open run produced no splits; the stress exercised nothing";
  }
}

TEST(SplitController, GateConvergesOnSyntheticIdleTrace) {
  core::split_controller ctl({.enabled = true});
  // Warm phase: busy intervals, no pressure.
  for (int i = 0; i < 5; ++i) ctl.observe(0.02, 0, 100);
  EXPECT_FALSE(ctl.gate_open());
  // Starvation phase: idle climbs past high_water with real queue misses.
  ctl.observe(0.20, 5, 100);
  EXPECT_FALSE(ctl.gate_open());  // still below high_water
  ctl.observe(0.45, 5, 100);
  EXPECT_TRUE(ctl.gate_open());
  EXPECT_EQ(ctl.gate_opens(), 1u);
  // Hysteresis: pressure between the watermarks keeps the gate latched.
  ctl.observe(0.15, 5, 100);
  EXPECT_TRUE(ctl.gate_open());
  // Recovery: pressure below low_water closes it.
  ctl.observe(0.01, 1, 1000);
  EXPECT_FALSE(ctl.gate_open());
  EXPECT_EQ(ctl.gate_closes(), 1u);
}

TEST(SplitController, IdleWithoutMissesIsNotPressure) {
  // Oversubscription guard: high idle-rate with zero pending-queue misses
  // means workers were preempted off the CPU, not starving for tasks —
  // splitting cannot help, the gate must stay shut.
  core::split_controller ctl({.enabled = true});
  for (int i = 0; i < 10; ++i) ctl.observe(0.95, 0, 100);
  EXPECT_FALSE(ctl.gate_open());
  // The same idle-rate with even one miss counts.
  ctl.observe(0.95, 1, 100);
  EXPECT_TRUE(ctl.gate_open());
}

TEST(SplitController, SupplyMatchesDemand) {
  core::split_options opts;
  opts.min_chunk = 8;
  core::split_controller ctl(opts);

  // One starving worker, nothing queued, nothing offered: split.
  EXPECT_EQ(ctl.should_split(1000, 1, 0), core::split_verdict::split);
  // Queued work already covers the demand: no split.
  EXPECT_EQ(ctl.should_split(1000, 1, 1), core::split_verdict::no_demand);
  // An outstanding (unclaimed) offer covers it too.
  ctl.note_split();
  EXPECT_EQ(ctl.should_split(1000, 1, 0), core::split_verdict::no_demand);
  ctl.note_claim();
  EXPECT_EQ(ctl.should_split(1000, 1, 0), core::split_verdict::split);
  // Demand present but the range is too small to split: denied.
  EXPECT_EQ(ctl.should_split(15, 1, 0), core::split_verdict::denied);
  EXPECT_EQ(ctl.should_split(16, 1, 0), core::split_verdict::split);

  // Gate-only demand requires zero supply.
  core::split_controller gated(opts);
  gated.observe(0.9, 10, 10);
  EXPECT_EQ(gated.should_split(1000, 0, 0), core::split_verdict::split);
  EXPECT_EQ(gated.should_split(1000, 0, 2), core::split_verdict::no_demand);

  // Disabled controller never splits.
  core::split_controller off({.enabled = false});
  EXPECT_EQ(off.should_split(1000, 4, 0), core::split_verdict::no_demand);
}

TEST(SplitChecksum, SplitAndUnsplitRunsAgree) {
  const std::uint64_t seed = 42;
  const std::size_t items = 30'000;
  thread_manager tm(workers_cfg(2));

  const auto run = [&](core::split_controller& ctl) {
    std::atomic<std::uint64_t> sum{0};
    algo::splittable_for(tm, ctl, 0, items, [&](std::size_t i) {
      sum.fetch_add(sim::split_item_hash(seed, i), std::memory_order_relaxed);
    });
    return sum.load(std::memory_order_relaxed);
  };

  core::split_options opts;
  opts.min_chunk = 32;
  core::split_controller splitting(opts);
  force_gate_open(splitting);
  const auto before = tm.counter_totals().tasks_split;
  const std::uint64_t split_sum = run(splitting);
  EXPECT_GT(tm.counter_totals().tasks_split, before);

  core::split_controller off({.enabled = false});
  const std::uint64_t unsplit_sum = run(off);

  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < items; ++i) serial += sim::split_item_hash(seed, i);

  EXPECT_EQ(split_sum, serial);
  EXPECT_EQ(unsplit_sum, serial);
}

TEST(SplitChecksum, NativeAndSimulatedRunsAgree) {
  const std::uint64_t seed = 7;
  const std::size_t items = 30'000;

  sim::split_sim_config cfg;
  cfg.model = sim::make_machine_model("haswell");
  cfg.cores = 4;
  cfg.seed = seed;
  cfg.items = items;
  cfg.imbalance = 0.5;
  cfg.lazy = true;
  cfg.min_chunk = 64;
  cfg.hash_items = true;
  const auto sim_result = sim::run_split_sim(cfg);
  EXPECT_EQ(sim_result.items_executed, items);
  EXPECT_GT(sim_result.splits, 0u);

  thread_manager tm(workers_cfg(2));
  core::split_options opts;
  opts.min_chunk = 64;
  core::split_controller ctl(opts);
  force_gate_open(ctl);
  std::atomic<std::uint64_t> native_sum{0};
  algo::splittable_for(tm, ctl, 0, items, [&](std::size_t i) {
    native_sum.fetch_add(sim::split_item_hash(seed, i), std::memory_order_relaxed);
  });

  EXPECT_EQ(native_sum.load(), sim_result.checksum);
}

TEST(SplitSim, FixedAndLazyConserveItems) {
  sim::split_sim_config cfg;
  cfg.model = sim::make_machine_model("haswell");
  cfg.cores = 4;
  cfg.items = 100'000;
  cfg.imbalance = 0.5;
  cfg.lazy = false;
  cfg.chunk = 1000;
  const auto fixed = sim::run_split_sim(cfg);
  EXPECT_EQ(fixed.items_executed, cfg.items);
  EXPECT_EQ(fixed.tasks, 100u);
  EXPECT_EQ(fixed.splits, 0u);

  cfg.lazy = true;
  cfg.chunk = 0;
  const auto lazy = sim::run_split_sim(cfg);
  EXPECT_EQ(lazy.items_executed, cfg.items);
  // Every split turns one task into two.
  EXPECT_EQ(lazy.tasks, static_cast<std::uint64_t>(cfg.cores) + lazy.splits);
}

TEST(WaveProbe, SnapshotsEveryWave) {
  // Satellite regression: the adaptive tuner's idle-rate interval must be
  // closed by the last finishing task of each wave (wave_probe), not by the
  // caller after the join tail — every wave should have a clean snapshot.
  thread_manager tm(workers_cfg(2));
  const auto report = core::adaptive_chunked_for_each(
      tm, 50'000, 64, [](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          volatile std::uint64_t x = i;
          (void)x;
        }
      });
  EXPECT_GT(report.waves, 0u);
  EXPECT_EQ(report.clean_wave_snapshots, report.waves);
}

}  // namespace
}  // namespace gran
