// gran_trace_report — offline trace analysis CLI.
//
// Two modes:
//
//  * File mode: `gran_trace_report --in=trace.bin` loads a binary dump
//    (written by --trace-bin / GRAN_TRACE_BIN or tracer::export_binary) and
//    prints the analysis report — per-task wait/exec/suspend decomposition,
//    critical path, reconstructed timelines, Eq. 1–3 recomputed from events.
//
//  * In-process mode (no --in): runs a task-graph workload right here with
//    tracing on, then analyzes its own trace and cross-checks the
//    event-derived Eq. 1–3 against the live /threads counters — the
//    acceptance loop for the analyzer itself.
//
//   gran_trace_report --in=PATH [--csv=PATH] [--top=N] [--force-waits]
//   gran_trace_report [--pattern=stencil1d] [--width=32] [--steps=16]
//                     [--grain=20000] [--kernel=busy_spin] [--workers=N]
//                     [--policy=priority-local-fifo] [--window=0]
//                     [--trace-buf=N] [--save=PATH] [--csv=PATH] [--top=N]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "graph/executor.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/analysis.hpp"
#include "perf/pmu.hpp"
#include "perf/trace.hpp"
#include "threads/thread_manager.hpp"
#include "util/cli.hpp"

namespace {

using namespace gran;

int analyze_and_print(const perf::trace_dump& dump, const cli_args& args,
                      const thread_manager::totals* counters) {
  perf::analysis_options opt;
  opt.top_n = static_cast<int>(args.get_int("top", 10));
  opt.force_wait_attribution = args.has("force-waits");

  const perf::analysis_result r = perf::analyze_trace(dump, opt);
  perf::write_report(std::cout, r, opt);
  if (!r.ok) return 1;

  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    std::ofstream f(csv);
    if (!f) {
      std::cerr << "cannot open " << csv << "\n";
      return 1;
    }
    perf::write_task_csv(f, r);
    std::cout << "(per-task csv: " << r.tasks.size() << " rows written to "
              << csv << ")\n";
  }

  if (counters != nullptr) {
    // Same definitions as the /threads counters (core/metrics.hpp): the
    // analyzer reconstructs them from events alone, so agreement here means
    // the trace carries the full story the counters summarize.
    const auto& c = *counters;
    const double c_idle =
        c.func_ns > 0 ? static_cast<double>(c.func_ns - std::min(c.func_ns, c.exec_ns)) /
                            static_cast<double>(c.func_ns)
                      : 0.0;
    const double c_td = c.tasks_executed > 0
                            ? static_cast<double>(c.exec_ns) /
                                  static_cast<double>(c.tasks_executed)
                            : 0.0;
    const double c_to = c.tasks_executed > 0
                            ? static_cast<double>(c.func_ns - std::min(c.func_ns, c.exec_ns)) /
                                  static_cast<double>(c.tasks_executed)
                            : 0.0;
    const auto pct_diff = [](double a, double b) {
      const double ref = std::max(std::abs(a), std::abs(b));
      return ref > 0 ? 100.0 * std::abs(a - b) / ref : 0.0;
    };
    std::uint64_t enqueues = 0;
    for (const auto& t : r.tasks)
      if (t.has_enqueue) ++enqueues;
    char line[160];
    std::cout << "counter cross-check (trace vs live /threads counters):\n";
    std::snprintf(line, sizeof line,
                  "  eq1 idle-rate: %.4f vs %.4f  (diff %.1f%%)\n", r.idle_rate,
                  c_idle, pct_diff(r.idle_rate, c_idle));
    std::cout << line;
    std::snprintf(line, sizeof line,
                  "  eq2 td:        %.2f us vs %.2f us  (diff %.1f%%)\n",
                  r.task_duration_ns / 1e3, c_td / 1e3,
                  pct_diff(r.task_duration_ns, c_td));
    std::cout << line;
    std::snprintf(line, sizeof line,
                  "  eq3 to:        %.2f us vs %.2f us  (diff %.1f%%)\n",
                  r.task_overhead_ns / 1e3, c_to / 1e3,
                  pct_diff(r.task_overhead_ns, c_to));
    std::cout << line;
    std::cout << "  spawned:       " << enqueues << " enqueue events vs "
              << c.tasks_spawned << " counter\n";
  }
  return 0;
}

int run_in_process(const cli_args& args) {
  graph::graph_spec g;
  g.kind = graph::pattern_from_name(args.get("pattern", "stencil1d"));
  g.width = static_cast<std::uint32_t>(args.get_int("width", 32));
  g.steps = static_cast<std::uint32_t>(args.get_int("steps", 16));
  g.radius = static_cast<std::uint32_t>(args.get_int("radius", 1));
  g.fraction = args.get_double("fraction", 0.25);
  g.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string err = g.validate();
  if (!err.empty()) {
    std::cerr << "invalid graph spec: " << err << "\n";
    return 1;
  }

  graph::kernel_spec k;
  k.kind = graph::kernel_from_name(args.get("kernel", "busy_spin"));
  k.grain_ns = args.get_double("grain", 20000.0);
  k.imbalance = args.get_double("imbalance", 0.0);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers =
      static_cast<int>(args.get_int("workers", std::max(2, hw / 2)));
  const auto window = static_cast<std::size_t>(args.get_int("window", 0));

  // Kernel calibration is once-per-process and runs on this thread inside
  // run_graph; pay it now so it doesn't show up as dead wall time (parked
  // workers) at the head of the trace.
  (void)graph::calibrated_rates();

  // The tracer must be live before the manager is built — workers cache
  // their ring pointers at construction. Same for the PMU plane: readers
  // attach at worker start.
  const std::string pmu = args.get("pmu", "");
  if (!pmu.empty()) perf::pmu_plane::instance().configure(pmu);

  auto& tr = perf::tracer::instance();
  tr.enable(static_cast<std::size_t>(args.get_int("trace-buf", 0)));

  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy = args.get("policy", "priority-local-fifo");

  thread_manager::totals totals;
  graph::run_stats stats;
  {
    thread_manager tm(cfg);
    tm.reset_counters();
    stats = graph::run_graph(tm, g, k, window);
    // Join the workers before touching rings or counters: quiescent
    // producers are the precondition for dump(), and a stopped manager
    // can't keep growing t_func under us.
    tm.stop();
    totals = tm.counter_totals();
  }
  const perf::trace_dump dump = tr.dump();
  tr.disable();

  std::cout << "ran " << g.describe() << " kernel=" << args.get("kernel", "busy_spin")
            << " grain=" << k.grain_ns << "ns workers=" << workers << " ("
            << stats.tasks << " tasks, " << stats.edges << " edges, "
            << std::fixed << stats.elapsed_s * 1e3 << " ms)\n";

  const std::string save = args.get("save", "");
  if (!save.empty()) {
    if (!tr.export_binary(save)) return 1;
    std::cout << "(binary trace saved to " << save << ")\n";
  }
  return analyze_and_print(dump, args, &totals);
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "gran_trace_report: analyze a gran binary trace dump\n"
           "  --in=PATH       load a dump written by --trace-bin/GRAN_TRACE_BIN\n"
           "  --csv=PATH      write the per-task decomposition as CSV\n"
           "  --top=N         chain/top-waiter rows in the report (default 10)\n"
           "  --force-waits   attribute waits even when events were dropped\n"
           "without --in, runs a traced graph workload in-process:\n"
           "  --pattern= --width= --steps= --radius= --fraction= --seed=\n"
           "  --kernel= --grain= --imbalance= --workers= --policy= --window=\n"
           "  --trace-buf=N   ring capacity in events\n"
           "  --pmu=MODE      per-task hardware counters: 1/on probes the\n"
           "                  hardware, sw forces the software-only fallback\n"
           "                  (also GRAN_PMU; off when neither is given)\n"
           "  --save=PATH     also save the captured trace as a binary dump\n";
    return 0;
  }

  const std::string in = args.get("in", "");
  if (in.empty()) return run_in_process(args);

  gran::perf::trace_dump dump;
  if (!gran::perf::load_trace_binary(in, dump)) {
    std::cerr << "cannot load trace dump from " << in
              << " (missing file or not a GRANTRC1 binary dump — note that "
                 "Chrome JSON exports are not loadable; use --trace-bin)\n";
    return 1;
  }
  std::cout << "loaded " << in << ": " << dump.total_events() << " events in "
            << dump.lanes.size() << " lanes\n";
  return analyze_and_print(dump, args, nullptr);
}
