// gran-characterize: the paper's methodology packaged as a tool.
//
// Runs the granularity characterization on THIS machine (or a modeled
// platform), computes every metric of §II-A, applies the grain-size
// selection rules of §IV, and prints a recommendation — the "auto-tuning
// infrastructure" step the paper lists as its goal.
//
//   $ ./gran_characterize                         # native, defaults
//   $ ./gran_characterize --points=4000000 --steps=20 --workers=4 --samples=5
//   $ ./gran_characterize --mode=sim --platform=haswell --cores=28
//   $ ./gran_characterize --csv=results/          # machine-readable output
//
// Output: the full metric table (execution time, COV, idle-rate, task
// duration/overhead, TM overhead, wait time, pending-queue accesses), the
// three selection rules side by side, and a one-line recommendation.
#include <iostream>
#include <memory>

#include "core/experiment.hpp"
#include "core/graph_experiment.hpp"
#include "core/selectors.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/observability.hpp"
#include "sim/graph_sim.hpp"
#include "sim/sim_backend.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

void print_usage() {
  std::cout <<
      "gran-characterize: find the right task grain size for this machine\n"
      "\n"
      "  --points=N         grid points of the heat-ring workload (default 1M native, 10M sim)\n"
      "  --steps=N          time steps (default 20)\n"
      "  --workers=N        worker threads / simulated cores (default: all)\n"
      "  --samples=N        repetitions per configuration (default 3)\n"
      "  --min-partition=N  finest grain to test (default 250)\n"
      "  --per-decade=N     sweep resolution (default 3)\n"
      "  --threshold=F      idle-rate tolerance for the threshold rule (default 0.30)\n"
      "  --policy=NAME      scheduling policy for native runs\n"
      "  --mode=sim         characterize a modeled platform instead\n"
      "  --platform=NAME    sim platform: sandy-bridge|ivy-bridge|haswell|xeon-phi\n"
      "  --csv=PREFIX       also write PREFIXcharacterize.csv\n"
      "\n"
      "task-graph workloads (src/graph; sweep the kernel grain instead):\n"
      "  --workload=NAME    graph pattern: trivial|serial_chain|stencil1d|fft|\n"
      "                     binary_tree|nearest|spread|random\n"
      "                     (default: the heat-ring partition sweep above)\n"
      "  --width=N --graph-steps=N --radius=N --fraction=F --graph-seed=N\n"
      "  --kernel=NAME      busy_spin|memory_stream|dgemm_like\n"
      "  --grain-min=NS --grain-max=NS   grain axis bounds (ns)\n"
      "\n"
      "observability (native mode; see docs/TRACING.md):\n"
      "  --trace-out=PATH         export a Chrome/Perfetto trace of the run\n"
      "  --trace-buf=N            per-worker trace ring capacity, events\n"
      "  --sample-interval-us=N   background counter sampling period (>0 = on)\n"
      "  --sample-out=PATH        time-series dump (.csv or .json)\n"
      "  --sample-set=P1,P2       counter prefixes to sample (default /threads)\n";
}

// Task-graph mode: characterize one dependence pattern by sweeping the
// kernel grain (the td dial) with the same Eq. 1–6 methodology.
int run_graph_workload(const cli_args& args, graph::pattern kind) {
  const bool sim_mode = args.get("mode", "native") == "sim";

  std::unique_ptr<core::graph_backend> backend;
  int default_workers;
  if (sim_mode) {
    const auto model = sim::make_machine_model(args.get("platform", "haswell"));
    default_workers = model.spec.cores;
    backend = std::make_unique<sim::graph_sim_backend>(model);
  } else {
    backend = std::make_unique<core::native_graph_backend>(
        args.get("policy", "priority-local-fifo"));
    default_workers = topology::host().num_cpus();
  }

  core::graph_sweep_config cfg;
  cfg.graph.kind = kind;
  cfg.graph.width = static_cast<std::uint32_t>(args.get_int("width", 256));
  cfg.graph.steps = static_cast<std::uint32_t>(args.get_int("graph-steps", 20));
  cfg.graph.radius = static_cast<std::uint32_t>(args.get_int("radius", 1));
  cfg.graph.fraction = args.get_double("fraction", 0.25);
  cfg.graph.seed = static_cast<std::uint64_t>(args.get_int("graph-seed", 1));
  if (const std::string err = cfg.graph.validate(); !err.empty()) {
    std::cerr << "invalid graph spec: " << err << "\n";
    return 1;
  }
  cfg.kernel.kind = graph::kernel_from_name(args.get("kernel", "busy_spin"));
  cfg.kernel.imbalance = args.get_double("imbalance", 0.0);
  cfg.cores = static_cast<int>(args.get_int("workers", default_workers));
  cfg.samples = static_cast<int>(args.get_int("samples", 3));
  cfg.grains_ns = core::grain_sweep_ns(
      args.get_double("grain-min", 1e3), args.get_double("grain-max", 1e6),
      static_cast<int>(args.get_int("per-decade", 3)));
  const double threshold = args.get_double("threshold", 0.30);

  std::cout << "characterizing " << cfg.graph.describe() << " on "
            << backend->name() << " with " << cfg.cores << " cores: "
            << cfg.graph.total_tasks() << " tasks, " << cfg.graph.total_edges()
            << " edges, " << cfg.samples << " samples per grain\n\n";

  core::graph_granularity_experiment exp(*backend, cfg);
  const auto points = exp.run([](const core::graph_sweep_point& p) {
    std::fprintf(stderr, "  grain %-10.0f exec %.4f s  idle %.1f%%\n", p.grain_ns,
                 p.exec_time_s.mean(), p.m.idle_rate * 100);
  });

  table_writer table({"grain (us)", "tasks", "td (us)", "exec (s)", "exec med (s)",
                      "exec min (s)", "COV", "idle (%)", "to (us)", "To (s)",
                      "tw (us)", "Tw (s)", "pending acc"});
  for (const auto& p : points) {
    table.add_row({format_number(p.grain_ns / 1e3, 2),
                   format_count(static_cast<std::int64_t>(p.num_tasks)),
                   format_number(p.m.task_duration_ns / 1e3, 2),
                   format_number(p.exec_time_s.mean(), 4),
                   format_number(p.exec_time_s.median(), 4),
                   format_number(p.exec_time_s.min(), 4),
                   format_number(p.cov, 3),
                   format_number(p.m.idle_rate * 100, 1),
                   format_number(p.m.task_overhead_ns / 1e3, 2),
                   format_number(p.m.tm_overhead_s, 4),
                   format_number(p.m.wait_per_task_ns / 1e3, 2),
                   format_number(p.m.wait_time_s, 4),
                   format_count(static_cast<std::int64_t>(p.mean.pending_accesses))});
  }
  std::cout << "\nGranularity characterization (paper metrics, Eqs. 1-6):\n";
  table.print(std::cout);

  // Selection rules on the grain axis: the oracle and the idle-rate
  // threshold (the pending-queue rule carries over unchanged).
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].exec_time_s.mean() < points[best].exec_time_s.mean()) best = i;
  const core::graph_sweep_point* by_idle = nullptr;
  for (const auto& p : points)
    if (p.m.idle_rate <= threshold) {
      by_idle = &p;
      break;
    }
  std::cout << "\nbest grain: ~" << format_duration_ns(points[best].grain_ns)
            << " per task (exec " << format_number(points[best].exec_time_s.mean(), 4)
            << " s)\n";
  if (by_idle)
    std::cout << "idle-rate <= " << format_number(threshold * 100, 0)
              << "% first satisfied at grain ~" << format_duration_ns(by_idle->grain_ns)
              << " per task\n";
  else
    std::cout << "idle-rate <= " << format_number(threshold * 100, 0)
              << "% unsatisfiable on this sweep\n";

  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "characterize.csv"))
    std::cout << "(csv written to " << csv << "characterize.csv)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  if (args.has("workload"))
    return run_graph_workload(args, graph::pattern_from_name(args.get("workload")));

  const bool sim_mode = args.get("mode", "native") == "sim";
  const std::string platform = args.get("platform", "haswell");

  std::unique_ptr<core::experiment_backend> backend;
  int default_workers;
  std::size_t default_points;
  if (sim_mode) {
    auto sb = std::make_unique<sim::sim_backend>(platform);
    default_workers = sb->model().spec.cores;
    default_points = 10'000'000;
    backend = std::move(sb);
  } else {
    backend = std::make_unique<core::native_backend>(
        args.get("policy", "priority-local-fifo"));
    default_workers = topology::host().num_cpus();
    default_points = 1'000'000;
  }

  core::sweep_config cfg;
  cfg.base.total_points =
      static_cast<std::size_t>(args.get_int("points", static_cast<std::int64_t>(default_points)));
  cfg.base.time_steps = static_cast<std::size_t>(args.get_int("steps", 20));
  cfg.cores = static_cast<int>(args.get_int("workers", default_workers));
  cfg.samples = static_cast<int>(args.get_int("samples", 3));
  cfg.partition_sizes = core::granularity_sweep(
      static_cast<std::size_t>(args.get_int("min-partition", 250)),
      cfg.base.total_points, static_cast<int>(args.get_int("per-decade", 3)));
  const double threshold = args.get_double("threshold", 0.30);

  std::cout << "characterizing " << backend->name() << " with " << cfg.cores
            << " cores: " << cfg.base.total_points << " grid points x "
            << cfg.base.time_steps << " steps, " << cfg.samples
            << " samples per configuration\n\n";

  core::granularity_experiment exp(*backend, cfg);
  const auto points = exp.run([](const core::sweep_point& p) {
    std::fprintf(stderr, "  partition %-10zu exec %.4f s  idle %.1f%%\n",
                 p.partition_size, p.exec_time_s.mean(), p.m.idle_rate * 100);
  });

  table_writer table({"partition", "tasks", "td (us)", "exec (s)", "exec med (s)",
                      "exec min (s)", "COV", "idle (%)", "to (us)", "To (s)",
                      "tw (us)", "Tw (s)", "pending acc"});
  for (const auto& p : points) {
    table.add_row({format_count(static_cast<std::int64_t>(p.partition_size)),
                   format_count(static_cast<std::int64_t>(p.num_tasks)),
                   format_number(p.m.task_duration_ns / 1e3, 2),
                   format_number(p.exec_time_s.mean(), 4),
                   format_number(p.exec_time_s.median(), 4),
                   format_number(p.exec_time_s.min(), 4),
                   format_number(p.cov, 3),
                   format_number(p.m.idle_rate * 100, 1),
                   format_number(p.m.task_overhead_ns / 1e3, 2),
                   format_number(p.m.tm_overhead_s, 4),
                   format_number(p.m.wait_per_task_ns / 1e3, 2),
                   format_number(p.m.wait_time_s, 4),
                   format_count(static_cast<std::int64_t>(p.mean.pending_accesses))});
  }
  std::cout << "\nGranularity characterization (paper metrics, Eqs. 1-6):\n";
  table.print(std::cout);

  // The three selection rules of §IV.
  const auto best = core::best_exec_time(points);
  const auto by_idle = core::idle_rate_threshold(points, threshold);
  const auto by_queue = core::pending_queue_minimum(points);

  table_writer rules({"rule", "picks partition", "exec (s)", "vs best"});
  rules.add_row({"best execution time (oracle)",
                 format_count(static_cast<std::int64_t>(best.partition_size)),
                 format_number(best.exec_time_s, 4), "-"});
  if (by_idle) {
    rules.add_row({"idle-rate <= " + format_number(threshold * 100, 0) + "% (SIV-A)",
                   format_count(static_cast<std::int64_t>(by_idle->partition_size)),
                   format_number(by_idle->exec_time_s, 4),
                   "+" + format_number(by_idle->regret * 100, 1) + "%"});
  } else {
    rules.add_row({"idle-rate <= " + format_number(threshold * 100, 0) + "% (SIV-A)",
                   "unsatisfiable", "-", "-"});
  }
  rules.add_row({"min pending-queue accesses (SIV-E)",
                 format_count(static_cast<std::int64_t>(by_queue.partition_size)),
                 format_number(by_queue.exec_time_s, 4),
                 "+" + format_number(by_queue.regret * 100, 1) + "%"});
  std::cout << "\nGrain-size selection rules:\n";
  rules.print(std::cout);

  const std::size_t pick = by_idle ? by_idle->partition_size : by_queue.partition_size;
  const double td =
      points[by_idle ? by_idle->index : by_queue.index].m.task_duration_ns;
  std::cout << "\nrecommendation: use tasks of ~" << format_count(static_cast<std::int64_t>(pick))
            << " grid points (~" << format_duration_ns(td)
            << " per task) on this configuration\n";

  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "characterize.csv"))
    std::cout << "(csv written to " << csv << "characterize.csv)\n";
  return 0;
}
