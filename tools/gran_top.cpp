// gran_top — live viewer and validator for the telemetry JSONL stream.
//
// A bench started with --metrics-out=FILE (or GRAN_METRICS=FILE) appends one
// JSON object per aggregation window; this tool tails that stream and renders
// the newest window as a per-worker table, top(1)-style. It doubles as the CI
// conformance checker for both exporter formats.
//
//   gran_top --in=gran_metrics.jsonl            render the newest window, exit
//   gran_top --in=gran_metrics.jsonl --follow   live refresh until Ctrl-C
//   gran_top --check=gran_metrics.jsonl         validate every JSONL line
//   gran_top --check-prom=gran_metrics.prom     validate Prometheus exposition
//
// Options: --interval-ms=N (follow refresh, default 500), --incidents=N
// (incident lines to keep in the footer, default 4), --no-clear (don't emit
// ANSI clear between frames).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/exporter.hpp"
#include "util/cli.hpp"
#include "util/minijson.hpp"
#include "util/table.hpp"

namespace {

using gran::json_value;

// --- JSONL conformance -----------------------------------------------------

// Returns an empty string when `line` is a well-formed stream record, else a
// description of the first violation.
std::string check_line(const std::string& line) {
  std::string perr;
  const auto doc = json_value::parse(line, &perr);
  if (!doc) return "not valid JSON (" + perr + ")";
  if (!doc->is_object()) return "line is not a JSON object";
  const json_value* type = doc->find("type");
  if (!type || !type->is_string()) return "missing string field \"type\"";

  const auto need_number = [&](const char* key) -> std::string {
    const json_value* v = doc->find(key);
    if (!v || !v->is_number())
      return std::string("missing numeric field \"") + key + "\"";
    return {};
  };

  if (type->as_string() == "window") {
    for (const char* key : {"seq", "t_start_ns", "t_end_ns", "dt_s"})
      if (auto e = need_number(key); !e.empty()) return e;
    const json_value* interval = doc->find("interval");
    if (!interval || !interval->is_object())
      return "missing object field \"interval\"";
    for (const char* key : {"idle_rate", "tasks", "tasks_per_s"})
      if (const json_value* v = interval->find(key); !v || !v->is_number())
        return std::string("interval missing numeric field \"") + key + "\"";
    for (const char* key : {"task_duration", "task_overhead"}) {
      const json_value* h = interval->find(key);
      if (!h || !h->is_object())
        return std::string("interval missing object field \"") + key + "\"";
      for (const char* sub : {"p50_ns", "p95_ns", "p99_ns", "mean_ns", "count"})
        if (const json_value* v = h->find(sub); !v || !v->is_number())
          return std::string(key) + " missing numeric field \"" + sub + "\"";
    }
    // Optional service section (present only when a task_service ran):
    // absent is fine — no schema break for batch streams — but when present
    // it must be complete.
    if (const json_value* svc = interval->find("service")) {
      if (!svc->is_object()) return "interval \"service\" is not an object";
      for (const char* key : {"accepted_per_s", "rejected_per_s",
                              "completed_per_s", "rejection_rate", "backlog"})
        if (const json_value* v = svc->find(key); !v || !v->is_number())
          return std::string("service missing numeric field \"") + key + "\"";
      const json_value* soj = svc->find("sojourn");
      if (!soj || !soj->is_object())
        return "service missing object field \"sojourn\"";
      for (const char* sub : {"p50_ns", "p95_ns", "p99_ns", "mean_ns", "count"})
        if (const json_value* v = soj->find(sub); !v || !v->is_number())
          return std::string("sojourn missing numeric field \"") + sub + "\"";
      // queue_wait rides the same optional-but-complete rule: streams from
      // writers predating it stay valid, current writers must emit the full
      // percentile object.
      if (const json_value* qw = svc->find("queue_wait")) {
        if (!qw->is_object()) return "service \"queue_wait\" is not an object";
        for (const char* sub :
             {"p50_ns", "p95_ns", "p99_ns", "mean_ns", "count"})
          if (const json_value* v = qw->find(sub); !v || !v->is_number())
            return std::string("queue_wait missing numeric field \"") + sub +
                   "\"";
      }
    }
    // Optional PMU section (present only when GRAN_PMU is on): complete
    // when present — mode plus the three percentile groups.
    if (const json_value* pmu = interval->find("pmu")) {
      if (!pmu->is_object()) return "interval \"pmu\" is not an object";
      if (const json_value* v = pmu->find("mode"); !v || !v->is_number())
        return "pmu missing numeric field \"mode\"";
      for (const char* key : {"ipc", "instructions", "llc_miss"}) {
        const json_value* h = pmu->find(key);
        if (!h || !h->is_object())
          return std::string("pmu missing object field \"") + key + "\"";
        for (const char* sub : {"p50", "p95", "p99", "mean", "count"})
          if (const json_value* v = h->find(sub); !v || !v->is_number())
            return std::string("pmu ") + key + " missing numeric field \"" +
                   sub + "\"";
      }
    }
    for (const char* key : {"counters", "rates"})
      if (const json_value* v = doc->find(key); !v || !v->is_object())
        return std::string("missing object field \"") + key + "\"";
    const json_value* workers = doc->find("workers");
    if (!workers || !workers->is_array())
      return "missing array field \"workers\"";
    for (const json_value& row : workers->items()) {
      if (!row.is_object()) return "worker row is not an object";
      for (const char* key :
           {"worker", "tasks_per_s", "idle_rate", "stolen_per_s",
            "duration_p50_ns", "duration_p95_ns", "duration_p99_ns",
            "duration_samples"})
        if (const json_value* v = row.find(key); !v || !v->is_number())
          return std::string("worker row missing numeric field \"") + key +
                 "\"";
      // Optional per-worker IPC (PMU runs): both fields or neither.
      const json_value* ipc = row.find("ipc_p50");
      const json_value* ipc_n = row.find("ipc_samples");
      if ((ipc != nullptr) != (ipc_n != nullptr))
        return "worker row has only one of \"ipc_p50\"/\"ipc_samples\"";
      if (ipc != nullptr && (!ipc->is_number() || !ipc_n->is_number()))
        return "worker row ipc fields are not numeric";
    }
    return {};
  }
  if (type->as_string() == "incident") {
    if (const json_value* v = doc->find("kind"); !v || !v->is_string())
      return "incident missing string field \"kind\"";
    return need_number("t_ns");
  }
  return "unknown record type \"" + type->as_string() + "\"";
}

int run_check(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "gran_top: cannot open " << path << "\n";
    return 2;
  }
  std::string line;
  std::size_t lineno = 0, windows = 0, incidents = 0;
  std::int64_t last_seq = -1;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string err = check_line(line);
    if (!err.empty()) {
      std::cerr << "gran_top: " << path << ":" << lineno << ": " << err << "\n";
      return 1;
    }
    const auto doc = json_value::parse(line);
    if (doc->string_at("type") == "window") {
      ++windows;
      const auto seq = static_cast<std::int64_t>(doc->number_at("seq", -1));
      if (seq <= last_seq) {
        std::cerr << "gran_top: " << path << ":" << lineno
                  << ": window seq not increasing (" << seq << " after "
                  << last_seq << ")\n";
        return 1;
      }
      last_seq = seq;
    } else {
      ++incidents;
    }
  }
  if (windows == 0) {
    std::cerr << "gran_top: " << path << ": no window records\n";
    return 1;
  }
  std::cout << "gran_top: " << path << " OK — " << windows << " window(s), "
            << incidents << " incident(s)\n";
  return 0;
}

int run_check_prom(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "gran_top: cannot open " << path << "\n";
    return 2;
  }
  std::string err;
  if (!gran::perf::validate_prometheus_text(f, &err)) {
    std::cerr << "gran_top: " << path << ": " << err << "\n";
    return 1;
  }
  // Second pass: family-level semantics. Unknown gran_* families pass by
  // design (newer writers may emit families this validator predates); a
  // non-gran prefix or a known family with the wrong TYPE fails.
  f.clear();
  f.seekg(0);
  if (!gran::perf::validate_gran_families(f, &err)) {
    std::cerr << "gran_top: " << path << ": " << err << "\n";
    return 1;
  }
  std::cout << "gran_top: " << path << " OK — valid Prometheus exposition\n";
  return 0;
}

// --- rendering -------------------------------------------------------------

std::string fmt_rate(double v) {
  char buf[32];
  if (v >= 1e6)
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  else if (v >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

void render(const json_value& w, const std::deque<std::string>& incidents,
            std::ostream& os) {
  const double dt = w.number_at("dt_s");
  const json_value* interval = w.find("interval");
  os << "window #" << static_cast<std::int64_t>(w.number_at("seq"))
     << "  dt=" << gran::format_number(dt * 1e3, 4) << " ms";
  if (interval) {
    os << "  tasks/s=" << fmt_rate(interval->number_at("tasks_per_s"))
       << "  idle=" << fmt_pct(interval->number_at("idle_rate"));
    if (const json_value* d = interval->find("task_duration"))
      os << "  dur p50/p95/p99="
         << gran::format_duration_ns(d->number_at("p50_ns")) << "/"
         << gran::format_duration_ns(d->number_at("p95_ns")) << "/"
         << gran::format_duration_ns(d->number_at("p99_ns"));
    if (const json_value* o = interval->find("task_overhead"))
      os << "  ovh p50=" << gran::format_duration_ns(o->number_at("p50_ns"));
  }
  os << "\n";
  // Second header line for service runs; batch streams (no service section)
  // render exactly as before.
  if (const json_value* svc = interval ? interval->find("service") : nullptr) {
    os << "service: acc/s=" << fmt_rate(svc->number_at("accepted_per_s"))
       << "  rej=" << fmt_pct(svc->number_at("rejection_rate"))
       << "  backlog="
       << static_cast<std::int64_t>(svc->number_at("backlog"));
    if (const json_value* soj = svc->find("sojourn"))
      os << "  soj p50/p95/p99="
         << gran::format_duration_ns(soj->number_at("p50_ns")) << "/"
         << gran::format_duration_ns(soj->number_at("p95_ns")) << "/"
         << gran::format_duration_ns(soj->number_at("p99_ns"));
    if (const json_value* qw = svc->find("queue_wait"))
      os << "  qwait p50/p99="
         << gran::format_duration_ns(qw->number_at("p50_ns")) << "/"
         << gran::format_duration_ns(qw->number_at("p99_ns"));
    os << "\n";
  }
  // PMU header line (only when the plane streamed a pmu section).
  if (const json_value* pmu = interval ? interval->find("pmu") : nullptr) {
    static const char* mode_names[] = {"off", "full", "reduced", "minimal",
                                       "software"};
    const int mode =
        static_cast<int>(pmu->number_at("mode", 0));
    os << "pmu: mode="
       << (mode >= 0 && mode <= 4 ? mode_names[mode] : "?");
    if (const json_value* ipc = pmu->find("ipc"))
      os << "  ipc p50/p95=" << gran::format_number(ipc->number_at("p50"), 3)
         << "/" << gran::format_number(ipc->number_at("p95"), 3);
    if (const json_value* ins = pmu->find("instructions"))
      os << "  instr/phase p50="
         << fmt_rate(ins->number_at("p50"));
    if (const json_value* llc = pmu->find("llc_miss"))
      os << "  llc/phase p50=" << fmt_rate(llc->number_at("p50"));
    os << "\n";
  }
  os << "\n";

  const json_value* workers = w.find("workers");
  if (workers && workers->size() > 0) {
    gran::table_writer t({"worker", "tasks/s", "idle", "stolen/s", "p50", "p95",
                          "p99", "samples", "ipc", "hb-age", "running"});
    for (const json_value& row : workers->items()) {
      std::string hb = "-", running = "-", ipc = "-";
      if (const json_value* age = row.find("heartbeat_age_ns")) {
        hb = gran::format_duration_ns(age->as_number());
        const auto task =
            static_cast<std::int64_t>(row.number_at("running_task", 0));
        if (task != 0)
          running = "#" + std::to_string(task) + " " +
                    gran::format_duration_ns(row.number_at("running_ns"));
      }
      // PMU plane off / software-degraded: no ipc field (or 0 samples).
      if (const json_value* v = row.find("ipc_p50")) {
        if (row.number_at("ipc_samples", 0) > 0)
          ipc = gran::format_number(v->as_number(), 3);
      }
      t.add_row({std::to_string(
                     static_cast<std::int64_t>(row.number_at("worker"))),
                 fmt_rate(row.number_at("tasks_per_s")),
                 fmt_pct(row.number_at("idle_rate")),
                 fmt_rate(row.number_at("stolen_per_s")),
                 gran::format_duration_ns(row.number_at("duration_p50_ns")),
                 gran::format_duration_ns(row.number_at("duration_p95_ns")),
                 gran::format_duration_ns(row.number_at("duration_p99_ns")),
                 std::to_string(static_cast<std::int64_t>(
                     row.number_at("duration_samples"))),
                 ipc, hb, running});
    }
    t.print(os);
  } else {
    os << "(no per-worker rows — is the thread manager running?)\n";
  }

  if (!incidents.empty()) {
    os << "\nincidents:\n";
    for (const auto& line : incidents) os << "  " << line << "\n";
  }
}

std::string describe_incident(const json_value& doc) {
  std::ostringstream ss;
  ss << doc.string_at("kind", "?");
  if (const json_value* wk = doc.find("worker"))
    ss << " worker " << static_cast<std::int64_t>(wk->as_number());
  const std::string detail = doc.string_at("detail");
  if (!detail.empty()) ss << ": " << detail;
  return ss.str();
}

int run_view(const std::string& path, bool follow, int interval_ms,
             std::size_t keep_incidents, bool clear) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "gran_top: cannot open " << path << "\n";
    return 2;
  }
  std::optional<json_value> last_window;
  std::deque<std::string> incidents;
  std::string line;
  bool dirty = false;
  for (;;) {
    while (std::getline(f, line)) {
      if (line.empty()) continue;
      const auto doc = json_value::parse(line);
      if (!doc || !doc->is_object()) continue;  // torn tail line; skip
      const std::string type = doc->string_at("type");
      if (type == "window") {
        last_window = *doc;
        dirty = true;
      } else if (type == "incident") {
        incidents.push_back(describe_incident(*doc));
        while (incidents.size() > keep_incidents) incidents.pop_front();
        dirty = true;
      }
    }
    if (!follow) break;
    if (dirty && last_window) {
      std::ostringstream frame;
      if (clear) frame << "\x1b[2J\x1b[H";
      frame << path << "\n\n";
      render(*last_window, incidents, frame);
      std::cout << frame.str() << std::flush;
      dirty = false;
    }
    f.clear();  // rewind EOF so appended lines are picked up
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (!last_window) {
    std::cerr << "gran_top: " << path << ": no window records yet\n";
    return 1;
  }
  render(*last_window, incidents, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gran::cli_args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: gran_top --in=FILE [--follow] [--interval-ms=N]\n"
           "       gran_top --check=FILE       validate telemetry JSONL\n"
           "       gran_top --check-prom=FILE  validate Prometheus text\n";
    return 0;
  }
  const std::string check = args.get("check", "");
  if (!check.empty()) return run_check(check);
  const std::string check_prom = args.get("check-prom", "");
  if (!check_prom.empty()) return run_check_prom(check_prom);

  std::string in = args.get("in", "");
  if (in.empty() && !args.positional().empty()) in = args.positional().front();
  if (in.empty()) {
    std::cerr << "gran_top: no input (use --in=FILE, --check=FILE, or "
                 "--check-prom=FILE; --help for usage)\n";
    return 2;
  }
  return run_view(in, args.get_bool("follow", false),
                  static_cast<int>(args.get_int("interval-ms", 500)),
                  static_cast<std::size_t>(args.get_int("incidents", 4)),
                  !args.get_bool("no-clear", false));
}
