// Lists every registered performance counter with its description and live
// value — gran's equivalent of HPX's --hpx:print-counter interface.
//
//   $ ./counter_explorer                # burst of work, then dump counters
//   $ ./counter_explorer --prefix=/threads/count
#include <cstdio>
#include <iostream>

#include "async/gran.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const std::string prefix = args.get("prefix", "/");

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 2));
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  // Generate some activity so the counters have something to show.
  std::vector<future<double>> work;
  for (int i = 0; i < 5'000; ++i)
    work.push_back(async([i] {
      double acc = i;
      for (int k = 0; k < 500; ++k) acc = acc * 0.999 + 1.0;
      return acc;
    }));
  when_all(work).wait();

  auto& registry = perf::registry::instance();
  table_writer table({"counter", "value", "description"});
  for (const auto& path : registry.list(prefix)) {
    const auto v = registry.query(path);
    table.add_row({path, v ? format_number(v->value, 2) : "?", registry.describe(path)});
  }
  std::cout << "registered performance counters under '" << prefix << "':\n";
  table.print(std::cout);

  // Interval semantics: capture, work, diff — the basis for the paper's
  // "dynamic measurement over any interval of interest".
  const auto before = perf::snapshot::capture({"/threads/count"});
  when_all(std::vector<future<double>>{async([] { return 1.0; })}).wait();
  const auto after = perf::snapshot::capture({"/threads/count"});
  const perf::interval delta(before, after);
  std::printf("\ntasks executed during the interval: %.0f\n",
              delta.value("/threads/count/cumulative"));
  return 0;
}
