// Quickstart: the gran API in one file.
//
//   $ ./quickstart
//
// Shows: starting the runtime, async/future, continuations, dataflow
// composition, cooperative synchronization, and reading performance
// counters at runtime.
#include <cstdio>
#include <vector>

#include "async/gran.hpp"

using namespace gran;

int main() {
  // 1. Start the runtime: one worker OS thread per core by default. The
  //    first manager becomes the process default used by async()/dataflow().
  scheduler_config cfg;
  cfg.num_workers = 4;      // explicit, so the example behaves the same anywhere
  cfg.pin_workers = false;  // harmless on oversubscribed machines
  thread_manager runtime(cfg);

  // 2. async: run a callable as a lightweight task, get a future.
  future<int> answer = async([] { return 6 * 7; });
  std::printf("async answer: %d\n", answer.get());

  // 3. Continuations: then() chains work without blocking anybody.
  future<int> chained =
      async([] { return 20; }).then([](future<int> f) { return f.get() + 1; }).then([](future<int> f) {
        return f.get() * 2;
      });
  std::printf("chained: %d\n", chained.get());

  // 4. dataflow: run when *all* inputs are ready — the building block the
  //    heat-diffusion benchmark uses for its dependency tree.
  future<int> a = async([] { return 3; });
  future<int> b = async([] { return 4; });
  future<int> c = dataflow([](future<int>& x, future<int>& y) { return x.get() * y.get(); },
                           a, b);
  std::printf("dataflow 3*4 = %d\n", c.get());

  // 5. Fork/join over many tasks with when_all.
  std::vector<future<long>> parts;
  for (long i = 0; i < 100; ++i)
    parts.push_back(async([i] { return i * i; }));
  when_all(parts).wait();
  long sum = 0;
  for (const auto& p : parts) sum += p.get();
  std::printf("sum of squares 0..99: %ld\n", sum);

  // 6. Tasks block cooperatively: a waiting task suspends, its worker keeps
  //    running other tasks — no OS thread ever blocks on a gran::mutex.
  gran::mutex m;
  long counter = 0;
  latch done(1000);
  for (int i = 0; i < 1000; ++i)
    runtime.spawn([&] {
      std::lock_guard<gran::mutex> lock(m);
      ++counter;
      done.count_down();
    });
  done.wait();
  std::printf("counter under cooperative mutex: %ld\n", counter);

  // 7. Introspection: every runtime metric is a named counter, queryable
  //    while the application runs (this is what the paper's adaptive
  //    grain-size control builds on).
  auto& registry = perf::registry::instance();
  std::printf("tasks executed:   %.0f\n",
              registry.value_or("/threads/count/cumulative", 0));
  std::printf("avg task time:    %.0f ns\n",
              registry.value_or("/threads/time/average", 0));
  std::printf("avg task overhead:%.0f ns\n",
              registry.value_or("/threads/time/average-overhead", 0));
  std::printf("idle-rate:        %.1f %%\n",
              100.0 * registry.value_or("/threads/idle-rate", 0));
  return 0;
}
