// The paper's benchmark as an application: futurized 1-D heat diffusion on
// a ring (HPX-Stencil / 1d_stencil_4), with the granularity knob exposed.
//
//   $ ./heat_ring --points=1000000 --partition=10000 --steps=50 --workers=4
//   $ ./heat_ring --sweep                 # granularity sweep + metrics table
//
// Verifies the result against the serial reference and prints the paper's
// metrics (idle-rate, task duration/overhead, queue counters) for the run.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/selectors.hpp"
#include "core/metrics.hpp"
#include "stencil/futurized.hpp"
#include "stencil/serial.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

int run_single(const cli_args& args) {
  stencil::params p;
  p.total_points = static_cast<std::size_t>(args.get_int("points", 1'000'000));
  p.partition_size = static_cast<std::size_t>(args.get_int("partition", 10'000));
  p.time_steps = static_cast<std::size_t>(args.get_int("steps", 50));
  p.max_steps_in_flight = static_cast<std::size_t>(args.get_int("window", 0));
  p.normalize();

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 0));
  cfg.pin_workers = topology::host().num_cpus() >= cfg.num_workers;
  thread_manager tm(cfg);

  std::printf("heat ring: %zu points, %zu per partition (%zu partitions), %zu steps, %d workers\n",
              p.total_points, p.partition_size, p.num_partitions(), p.time_steps,
              tm.num_workers());

  tm.reset_counters();
  const auto result = stencil::run_futurized(tm, p);
  tm.wait_idle();  // drain the final tasks' accounting before reading counters

  // Correctness: bit-identical to the serial reference.
  const auto reference = stencil::run_serial(p);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    if (reference[i] != result.state[i]) ++mismatches;

  const auto totals = tm.counter_totals();
  core::run_measurement meas;
  meas.exec_time_s = result.elapsed_s;
  meas.cores = tm.num_workers();
  meas.tasks = totals.tasks_executed;
  meas.exec_ns = static_cast<double>(totals.exec_ns);
  meas.func_ns = static_cast<double>(totals.func_ns);
  const auto m = core::compute_metrics(meas, 0.0);

  std::printf("elapsed:        %.4f s (%s)\n", result.elapsed_s,
              mismatches == 0 ? "verified against serial reference"
                              : "MISMATCH vs serial reference!");
  std::printf("tasks executed: %llu\n",
              static_cast<unsigned long long>(totals.tasks_executed));
  std::printf("task duration:  %s\n", format_duration_ns(m.task_duration_ns).c_str());
  std::printf("task overhead:  %s\n", format_duration_ns(m.task_overhead_ns).c_str());
  std::printf("idle-rate:      %.1f %%\n", 100.0 * m.idle_rate);
  std::printf("pending queue:  %llu accesses, %llu misses\n",
              static_cast<unsigned long long>(totals.queues.pending_accesses),
              static_cast<unsigned long long>(totals.queues.pending_misses));
  std::printf("tasks stolen:   %llu\n",
              static_cast<unsigned long long>(totals.tasks_stolen));
  return mismatches == 0 ? 0 : 1;
}

int run_sweep(const cli_args& args) {
  core::sweep_config cfg;
  cfg.base.total_points = static_cast<std::size_t>(args.get_int("points", 1'000'000));
  cfg.base.time_steps = static_cast<std::size_t>(args.get_int("steps", 20));
  cfg.cores = static_cast<int>(args.get_int("workers", topology::host().num_cpus()));
  cfg.samples = static_cast<int>(args.get_int("samples", 2));
  cfg.partition_sizes = core::granularity_sweep(
      static_cast<std::size_t>(args.get_int("min-partition", 250)),
      cfg.base.total_points, 2);

  core::native_backend backend;
  core::granularity_experiment exp(backend, cfg);

  table_writer table({"partition", "tasks", "exec (s)", "COV", "idle-rate (%)",
                      "td (us)", "to (us)", "pending acc"});
  auto points = exp.run([](const core::sweep_point& pt) {
    std::fprintf(stderr, "  partition %-9zu done\n", pt.partition_size);
  });
  for (const auto& pt : points) {
    table.add_row({format_count(static_cast<std::int64_t>(pt.partition_size)),
                   format_count(static_cast<std::int64_t>(pt.num_tasks)),
                   format_number(pt.exec_time_s.mean(), 4), format_number(pt.cov, 3),
                   format_number(pt.m.idle_rate * 100, 1),
                   format_number(pt.m.task_duration_ns / 1e3, 1),
                   format_number(pt.m.task_overhead_ns / 1e3, 1),
                   format_count(static_cast<std::int64_t>(pt.mean.pending_accesses))});
  }
  std::cout << "\nGranularity sweep on this host (" << cfg.cores << " workers):\n";
  table.print(std::cout);

  const auto best = core::best_exec_time(points);
  std::cout << "best partition size: " << best.partition_size << " ("
            << format_number(best.exec_time_s, 4) << " s)\n";
  if (const auto sel = core::idle_rate_threshold(points, 0.30))
    std::cout << "idle-rate<=30% picks: " << sel->partition_size << " (+"
              << format_number(sel->regret * 100, 1) << "% vs best)\n";
  const auto pq = core::pending_queue_minimum(points);
  std::cout << "pending-queue minimum picks: " << pq.partition_size << " (+"
            << format_number(pq.regret * 100, 1) << "% vs best)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  return args.has("sweep") ? run_sweep(args) : run_single(args);
}
