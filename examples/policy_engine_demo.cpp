// The paper's §VI vision end to end: an APEX-style policy engine watches
// the runtime's performance counters in the background and adapts the task
// grain size of a live application.
//
//   $ ./policy_engine_demo --items-per-wave=200000 --waves=30 --workers=4
//
// The application processes waves of a synthetic workload using whatever
// chunk size the controller currently recommends. It starts deliberately
// too fine; the engine observes the interval idle-rate (Eq. 1 computed over
// each 20 ms window) and coarsens the chunk while the application runs —
// no offline sweep, no instrumentation inside the application loop.
#include <atomic>
#include <cstdio>

#include "async/gran.hpp"
#include "core/policy_engine.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

double item_kernel(std::size_t i) {
  double acc = static_cast<double>(i);
  for (int k = 0; k < 60; ++k) acc = acc * 0.999999 + 0.25;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const std::size_t items_per_wave =
      static_cast<std::size_t>(args.get_int("items-per-wave", 200'000));
  const int waves = static_cast<int>(args.get_int("waves", 30));

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 4));
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  // The shared knob: the application reads it, the policy engine writes it.
  std::atomic<std::size_t> chunk{8};

  core::tuner_options topts;
  topts.min_chunk = 8;
  topts.max_chunk = items_per_wave / static_cast<std::size_t>(tm.num_workers());
  core::grain_tuner tuner(chunk.load(), topts);

  core::policy_engine_options eopts;
  eopts.period = std::chrono::milliseconds(20);
  core::policy_engine engine(eopts);
  engine.add_policy(
      "granularity", core::granularity_policy_counters(),
      core::make_granularity_policy(tuner, tm.num_workers(), [&chunk](std::size_t c) {
        std::printf("  [policy engine] chunk -> %zu\n", c);
        chunk.store(c, std::memory_order_release);
      }));
  engine.start();

  std::printf("processing %d waves of %zu items, starting chunk %zu, %d workers\n",
              waves, items_per_wave, chunk.load(), tm.num_workers());

  std::atomic<double> sink{0.0};
  stopwatch total;
  for (int w = 0; w < waves; ++w) {
    const std::size_t c = chunk.load(std::memory_order_acquire);
    const std::size_t tasks = (items_per_wave + c - 1) / c;
    stopwatch wave_clock;
    latch done(static_cast<std::int64_t>(tasks));
    for (std::size_t lo = 0; lo < items_per_wave; lo += c) {
      const std::size_t hi = std::min(items_per_wave, lo + c);
      tm.spawn([&sink, &done, lo, hi] {
        double acc = 0;
        for (std::size_t i = lo; i < hi; ++i) acc += item_kernel(i);
        sink.fetch_add(acc, std::memory_order_relaxed);
        done.count_down();
      });
    }
    done.wait();
    if (w % 5 == 0 || w == waves - 1)
      std::printf("wave %2d: chunk %-7zu %6.2f ms\n", w, c, wave_clock.elapsed_s() * 1e3);
  }
  const double elapsed = total.elapsed_s();
  engine.stop();

  std::printf("done in %.3f s; final chunk %zu after %llu policy ticks (checksum %.3f)\n",
              elapsed, chunk.load(), static_cast<unsigned long long>(engine.ticks()),
              sink.load());
  return 0;
}
