// A CSP-style processing pipeline on cooperative channels.
//
//   $ ./pipeline_dataflow --items=20000 --stage-cost=200
//
// producer -> parse -> transform -> aggregate, each stage a long-running
// task connected by bounded gran::channels. Stages block cooperatively on
// full/empty channels (their worker keeps executing other stages), so the
// whole pipeline runs on fewer workers than stages — impossible with
// OS-thread-per-stage designs. The same dependency structure could be
// expressed with dataflow(); channels fit streams of unknown length.
#include <cstdio>
#include <optional>
#include <string>

#include "async/gran.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// A unit of streamed work.
struct record {
  long id = 0;
  double value = 0.0;
};

// Burn a controllable number of nanoseconds to emulate per-stage cost.
void spin_work(int iters) {
  volatile double acc = 1.0;
  for (int i = 0; i < iters; ++i) acc = acc * 1.0000001 + 0.1;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const long items = args.get_int("items", 20'000);
  const int stage_cost = static_cast<int>(args.get_int("stage-cost", 200));

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 2));
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  channel<long> raw(64);
  channel<record> parsed(64);
  channel<record> transformed(64);

  stopwatch clock;

  auto producer = async([&] {
    for (long i = 0; i < items; ++i) raw.send(i);
    raw.close();
    return items;
  });

  auto parser = async([&] {
    long count = 0;
    while (auto v = raw.recv()) {
      spin_work(stage_cost);
      parsed.send(record{*v, static_cast<double>(*v) * 0.5});
      ++count;
    }
    parsed.close();
    return count;
  });

  auto transformer = async([&] {
    long count = 0;
    while (auto r = parsed.recv()) {
      spin_work(stage_cost);
      r->value = r->value * r->value + 1.0;
      transformed.send(*r);
      ++count;
    }
    transformed.close();
    return count;
  });

  auto aggregator = async([&] {
    double sum = 0.0;
    long count = 0;
    while (auto r = transformed.recv()) {
      sum += r->value;
      ++count;
    }
    std::printf("aggregated %ld records, checksum %.3f\n", count, sum);
    return count;
  });

  const long produced = producer.get();
  const long parsed_n = parser.get();
  const long transformed_n = transformer.get();
  const long aggregated = aggregator.get();
  const double elapsed = clock.elapsed_s();

  std::printf("pipeline: %ld -> %ld -> %ld -> %ld records in %.3f s (%.0f rec/s)\n",
              produced, parsed_n, transformed_n, aggregated, elapsed,
              static_cast<double>(items) / elapsed);
  std::printf("4 pipeline stages ran on %d workers via cooperative blocking\n",
              tm.num_workers());
  return produced == items && parsed_n == items && transformed_n == items &&
                 aggregated == items
             ? 0
             : 1;
}
