// Two-dimensional heat diffusion on a torus, tiled into an explicit
// dataflow graph — the natural generalization of the paper's 1-D benchmark
// and a demonstration that the same futurization pattern scales to richer
// dependency structures (each tile consumes FIVE futures per step: itself
// and its four neighbours).
//
//   $ ./heat_2d --n=256 --tile=64 --steps=20 --workers=4
//
// The tile edge is the 2-D granularity dial: tile*tile points per task.
// Verified against a serial 2-D reference.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "async/gran.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

using grid = std::vector<double>;  // row-major n x n

constexpr double k_alpha = 0.1;  // diffusion coefficient * dt / h^2

// 5-point update with torus wraparound.
double heat5(double up, double left, double mid, double right, double down) {
  return mid + k_alpha * (up + left + right + down - 4.0 * mid);
}

grid initial(std::size_t n) {
  grid u(n * n);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      u[y * n + x] = std::sin(0.1 * static_cast<double>(x)) *
                     std::cos(0.07 * static_cast<double>(y));
  return u;
}

grid step_serial(const grid& u, std::size_t n) {
  grid next(n * n);
  for (std::size_t y = 0; y < n; ++y) {
    const std::size_t yu = (y + n - 1) % n, yd = (y + 1) % n;
    for (std::size_t x = 0; x < n; ++x) {
      const std::size_t xl = (x + n - 1) % n, xr = (x + 1) % n;
      next[y * n + x] = heat5(u[yu * n + x], u[y * n + xl], u[y * n + x],
                              u[y * n + xr], u[yd * n + x]);
    }
  }
  return next;
}

// One tile: `t` rows x `t` cols with origin (ty, tx) in tile coordinates.
// Tiles are stored with a one-cell halo so neighbours only need edges; for
// simplicity here each tile stores its full t x t block and the update
// reads neighbour blocks' edge rows/columns directly.
using tile_data = std::shared_ptr<const std::vector<double>>;

std::vector<double> tile_step(std::size_t t, const std::vector<double>& up,
                              const std::vector<double>& left,
                              const std::vector<double>& mid,
                              const std::vector<double>& right,
                              const std::vector<double>& down) {
  std::vector<double> next(t * t);
  const auto at = [t](const std::vector<double>& block, std::size_t y,
                      std::size_t x) { return block[y * t + x]; };
  for (std::size_t y = 0; y < t; ++y) {
    for (std::size_t x = 0; x < t; ++x) {
      const double v_up = y > 0 ? at(mid, y - 1, x) : at(up, t - 1, x);
      const double v_down = y + 1 < t ? at(mid, y + 1, x) : at(down, 0, x);
      const double v_left = x > 0 ? at(mid, y, x - 1) : at(left, y, t - 1);
      const double v_right = x + 1 < t ? at(mid, y, x + 1) : at(right, y, 0);
      next[y * t + x] = heat5(v_up, v_left, at(mid, y, x), v_right, v_down);
    }
  }
  return next;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));
  std::size_t tile = static_cast<std::size_t>(args.get_int("tile", 64));
  const std::size_t steps = static_cast<std::size_t>(args.get_int("steps", 20));
  while (n % tile != 0) --tile;  // tile must divide n
  const std::size_t nt = n / tile;

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 0));
  cfg.pin_workers = topology::host().num_cpus() >= cfg.num_workers;
  thread_manager tm(cfg);

  std::printf("2-D heat: %zux%zu grid, %zux%zu tiles (%zu tasks/step x %zu steps), %d workers\n",
              n, n, tile, tile, nt * nt, steps, tm.num_workers());

  // Split the initial grid into tile futures.
  const grid u0 = initial(n);
  std::vector<future<tile_data>> current(nt * nt);
  for (std::size_t ty = 0; ty < nt; ++ty)
    for (std::size_t tx = 0; tx < nt; ++tx) {
      auto block = std::make_shared<std::vector<double>>(tile * tile);
      for (std::size_t y = 0; y < tile; ++y)
        for (std::size_t x = 0; x < tile; ++x)
          (*block)[y * tile + x] = u0[(ty * tile + y) * n + tx * tile + x];
      current[ty * nt + tx] = make_ready_future<tile_data>(tile_data(block));
    }

  stopwatch clock;
  std::vector<future<tile_data>> next(nt * nt);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t ty = 0; ty < nt; ++ty) {
      for (std::size_t tx = 0; tx < nt; ++tx) {
        const std::size_t up = ((ty + nt - 1) % nt) * nt + tx;
        const std::size_t down = ((ty + 1) % nt) * nt + tx;
        const std::size_t left = ty * nt + (tx + nt - 1) % nt;
        const std::size_t right = ty * nt + (tx + 1) % nt;
        next[ty * nt + tx] = dataflow(
            [tile](future<tile_data>& u, future<tile_data>& l, future<tile_data>& m,
                   future<tile_data>& r, future<tile_data>& d) {
              return tile_data(std::make_shared<const std::vector<double>>(
                  tile_step(tile, *u.get(), *l.get(), *m.get(), *r.get(), *d.get())));
            },
            current[up], current[left], current[ty * nt + tx], current[right],
            current[down]);
      }
    }
    current.swap(next);
  }
  when_all(current).wait();
  const double elapsed = clock.elapsed_s();

  // Verify against the serial reference.
  grid ref = u0;
  for (std::size_t s = 0; s < steps; ++s) ref = step_serial(ref, n);
  std::size_t mismatches = 0;
  for (std::size_t ty = 0; ty < nt; ++ty)
    for (std::size_t tx = 0; tx < nt; ++tx) {
      const auto& block = *current[ty * nt + tx].get();
      for (std::size_t y = 0; y < tile; ++y)
        for (std::size_t x = 0; x < tile; ++x)
          if (block[y * tile + x] != ref[(ty * tile + y) * n + tx * tile + x])
            ++mismatches;
    }

  std::printf("%zu steps in %.4f s, %s (%.1f Mpoint-updates/s)\n", steps, elapsed,
              mismatches == 0 ? "bit-identical to the serial reference"
                              : "MISMATCH vs serial reference!",
              static_cast<double>(n) * n * steps / elapsed / 1e6);
  return mismatches == 0 ? 0 : 1;
}
