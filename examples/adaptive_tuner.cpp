// The adaptive grain-size tuner in action — the paper's stated goal,
// demonstrated end to end: a parallel-for whose chunk size is re-tuned
// between waves from the live /threads idle-rate.
//
//   $ ./adaptive_tuner --items=500000 --start-chunk=8
//
// Starting deliberately too fine, watch the controller grow the chunk until
// the idle-rate drops under its watermark.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "core/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

// ~0.5 us of work per item.
double item_kernel(std::size_t i) {
  double acc = static_cast<double>(i);
  for (int k = 0; k < 120; ++k) acc = acc * 0.999999 + 0.25;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const std::size_t items = static_cast<std::size_t>(args.get_int("items", 500'000));
  const std::size_t start_chunk =
      static_cast<std::size_t>(args.get_int("start-chunk", 8));

  scheduler_config cfg;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 4));
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  std::printf("adaptive parallel-for over %zu items, starting chunk %zu, %d workers\n",
              items, start_chunk, tm.num_workers());

  std::atomic<double> sink{0.0};
  core::tuner_options opts;
  opts.min_chunk = 1;
  opts.max_chunk = items / static_cast<std::size_t>(tm.num_workers());

  const auto report = core::adaptive_chunked_for_each(
      tm, items, start_chunk,
      [&sink](std::size_t first, std::size_t last) {
        double acc = 0.0;
        for (std::size_t i = first; i < last; ++i) acc += item_kernel(i);
        sink.fetch_add(acc, std::memory_order_relaxed);
      },
      opts);

  table_writer table({"wave", "idle-rate (%)", "chunk before", "chunk after"});
  for (std::size_t w = 0; w < report.decisions.size(); ++w) {
    const auto& d = report.decisions[w];
    table.add_row({std::to_string(w), format_number(d.idle_rate * 100, 1),
                   format_count(static_cast<std::int64_t>(d.chunk_before)),
                   format_count(static_cast<std::int64_t>(d.chunk_after))});
  }
  table.print(std::cout);
  std::printf("finished in %.4f s over %zu waves; final chunk %zu (checksum %.3f)\n",
              report.elapsed_s, report.waves, report.final_chunk, sink.load());
  return 0;
}
