// Task granularity on a recursive workload: parallel Fibonacci with a
// sequential cutoff.
//
//   $ ./fibonacci_granularity --n=30
//
// fib(n) spawns fib(n-1) as a task and computes fib(n-2) inline — the
// classic fork/join pattern. The cutoff below which recursion goes fully
// sequential *is* the task grain size: cutoff 2 floods the runtime with
// two-instruction tasks, large cutoffs leave too little parallelism. The
// sweep prints time and task counts per cutoff, the recursive analogue of
// the paper's partition-size sweep.
#include <cstdio>
#include <iostream>
#include <functional>

#include "async/gran.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

long fib_seq(int n) { return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2); }

long fib_par(int n, int cutoff) {
  if (n < cutoff) return fib_seq(n);
  future<long> left = async([n, cutoff] { return fib_par(n - 1, cutoff); });
  const long right = fib_par(n - 2, cutoff);
  return left.get() + right;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 28));
  const int workers = static_cast<int>(args.get_int("workers", 4));

  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  const long expected = fib_seq(n);
  std::printf("fib(%d) = %ld, %d workers — sweeping the sequential cutoff\n", n,
              expected, workers);

  table_writer table({"cutoff", "time (s)", "tasks", "phases", "avg task (us)", "idle-rate (%)"});
  for (int cutoff : {4, 8, 12, 16, 20, 24}) {
    if (cutoff > n) break;
    tm.reset_counters();
    stopwatch clock;
    // Run the root inside a task so nested get() suspends cooperatively.
    const long result = async([n, cutoff] { return fib_par(n, cutoff); }).get();
    const double elapsed = clock.elapsed_s();
    GRAN_ASSERT(result == expected);

    const auto totals = tm.counter_totals();
    const double tasks = static_cast<double>(totals.tasks_executed);
    const double td_us =
        tasks > 0 ? static_cast<double>(totals.exec_ns) / tasks / 1e3 : 0;
    const double idle =
        totals.func_ns > 0
            ? 100.0 * static_cast<double>(totals.func_ns - totals.exec_ns) /
                  static_cast<double>(totals.func_ns)
            : 0;
    // phases > tasks whenever futures suspended mid-task and resumed — the
    // paper's thread-phase counters in action.
    table.add_row({std::to_string(cutoff), format_number(elapsed, 4),
                   format_count(static_cast<std::int64_t>(totals.tasks_executed)),
                   format_count(static_cast<std::int64_t>(totals.phases_executed)),
                   format_number(td_us, 1), format_number(idle, 1)});
  }
  table.print(std::cout);
  return 0;
}
