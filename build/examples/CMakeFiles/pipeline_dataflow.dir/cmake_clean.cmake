file(REMOVE_RECURSE
  "CMakeFiles/pipeline_dataflow.dir/pipeline_dataflow.cpp.o"
  "CMakeFiles/pipeline_dataflow.dir/pipeline_dataflow.cpp.o.d"
  "pipeline_dataflow"
  "pipeline_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
