# Empty dependencies file for heat_2d.
# This may be replaced when dependencies are built.
