file(REMOVE_RECURSE
  "CMakeFiles/heat_2d.dir/heat_2d.cpp.o"
  "CMakeFiles/heat_2d.dir/heat_2d.cpp.o.d"
  "heat_2d"
  "heat_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
