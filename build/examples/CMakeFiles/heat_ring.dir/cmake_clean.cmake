file(REMOVE_RECURSE
  "CMakeFiles/heat_ring.dir/heat_ring.cpp.o"
  "CMakeFiles/heat_ring.dir/heat_ring.cpp.o.d"
  "heat_ring"
  "heat_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
