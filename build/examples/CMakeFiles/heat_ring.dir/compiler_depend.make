# Empty compiler generated dependencies file for heat_ring.
# This may be replaced when dependencies are built.
