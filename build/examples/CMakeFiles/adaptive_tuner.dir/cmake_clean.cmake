file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tuner.dir/adaptive_tuner.cpp.o"
  "CMakeFiles/adaptive_tuner.dir/adaptive_tuner.cpp.o.d"
  "adaptive_tuner"
  "adaptive_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
