# Empty compiler generated dependencies file for adaptive_tuner.
# This may be replaced when dependencies are built.
