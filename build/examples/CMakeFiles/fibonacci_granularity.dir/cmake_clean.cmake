file(REMOVE_RECURSE
  "CMakeFiles/fibonacci_granularity.dir/fibonacci_granularity.cpp.o"
  "CMakeFiles/fibonacci_granularity.dir/fibonacci_granularity.cpp.o.d"
  "fibonacci_granularity"
  "fibonacci_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibonacci_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
