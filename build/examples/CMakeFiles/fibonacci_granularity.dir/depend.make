# Empty dependencies file for fibonacci_granularity.
# This may be replaced when dependencies are built.
