file(REMOVE_RECURSE
  "CMakeFiles/counter_explorer.dir/counter_explorer.cpp.o"
  "CMakeFiles/counter_explorer.dir/counter_explorer.cpp.o.d"
  "counter_explorer"
  "counter_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
