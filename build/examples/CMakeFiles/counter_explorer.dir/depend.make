# Empty dependencies file for counter_explorer.
# This may be replaced when dependencies are built.
