file(REMOVE_RECURSE
  "CMakeFiles/policy_engine_demo.dir/policy_engine_demo.cpp.o"
  "CMakeFiles/policy_engine_demo.dir/policy_engine_demo.cpp.o.d"
  "policy_engine_demo"
  "policy_engine_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_engine_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
