# Empty compiler generated dependencies file for policy_engine_demo.
# This may be replaced when dependencies are built.
