# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_ring "/root/repo/build/examples/heat_ring" "--points=20000" "--partition=500" "--steps=5" "--workers=2")
set_tests_properties(example_heat_ring PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_2d "/root/repo/build/examples/heat_2d" "--n=64" "--tile=16" "--steps=5" "--workers=2")
set_tests_properties(example_heat_2d PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fibonacci "/root/repo/build/examples/fibonacci_granularity" "--n=18" "--workers=2")
set_tests_properties(example_fibonacci PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline_dataflow" "--items=2000" "--workers=2")
set_tests_properties(example_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_tuner "/root/repo/build/examples/adaptive_tuner" "--items=50000" "--workers=2")
set_tests_properties(example_adaptive_tuner PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_engine "/root/repo/build/examples/policy_engine_demo" "--items-per-wave=50000" "--waves=8" "--workers=2")
set_tests_properties(example_policy_engine PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_counter_explorer "/root/repo/build/examples/counter_explorer" "--workers=2")
set_tests_properties(example_counter_explorer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
