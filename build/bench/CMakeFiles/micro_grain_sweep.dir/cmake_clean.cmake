file(REMOVE_RECURSE
  "CMakeFiles/micro_grain_sweep.dir/micro_grain_sweep.cpp.o"
  "CMakeFiles/micro_grain_sweep.dir/micro_grain_sweep.cpp.o.d"
  "micro_grain_sweep"
  "micro_grain_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_grain_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
