# Empty dependencies file for micro_grain_sweep.
# This may be replaced when dependencies are built.
