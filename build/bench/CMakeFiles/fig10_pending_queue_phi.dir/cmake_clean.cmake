file(REMOVE_RECURSE
  "CMakeFiles/fig10_pending_queue_phi.dir/fig10_pending_queue_phi.cpp.o"
  "CMakeFiles/fig10_pending_queue_phi.dir/fig10_pending_queue_phi.cpp.o.d"
  "fig10_pending_queue_phi"
  "fig10_pending_queue_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pending_queue_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
