# Empty dependencies file for fig10_pending_queue_phi.
# This may be replaced when dependencies are built.
