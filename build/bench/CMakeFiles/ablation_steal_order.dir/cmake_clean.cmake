file(REMOVE_RECURSE
  "CMakeFiles/ablation_steal_order.dir/ablation_steal_order.cpp.o"
  "CMakeFiles/ablation_steal_order.dir/ablation_steal_order.cpp.o.d"
  "ablation_steal_order"
  "ablation_steal_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_steal_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
