# Empty dependencies file for ablation_steal_order.
# This may be replaced when dependencies are built.
