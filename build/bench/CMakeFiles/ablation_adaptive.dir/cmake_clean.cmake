file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive.dir/ablation_adaptive.cpp.o"
  "CMakeFiles/ablation_adaptive.dir/ablation_adaptive.cpp.o.d"
  "ablation_adaptive"
  "ablation_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
