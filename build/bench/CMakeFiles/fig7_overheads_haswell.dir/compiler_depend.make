# Empty compiler generated dependencies file for fig7_overheads_haswell.
# This may be replaced when dependencies are built.
