file(REMOVE_RECURSE
  "CMakeFiles/fig7_overheads_haswell.dir/fig7_overheads_haswell.cpp.o"
  "CMakeFiles/fig7_overheads_haswell.dir/fig7_overheads_haswell.cpp.o.d"
  "fig7_overheads_haswell"
  "fig7_overheads_haswell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overheads_haswell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
