# Empty dependencies file for fig3_exec_time.
# This may be replaced when dependencies are built.
