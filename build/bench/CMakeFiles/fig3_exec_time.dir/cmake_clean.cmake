file(REMOVE_RECURSE
  "CMakeFiles/fig3_exec_time.dir/fig3_exec_time.cpp.o"
  "CMakeFiles/fig3_exec_time.dir/fig3_exec_time.cpp.o.d"
  "fig3_exec_time"
  "fig3_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
