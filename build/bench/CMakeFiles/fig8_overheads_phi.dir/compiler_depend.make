# Empty compiler generated dependencies file for fig8_overheads_phi.
# This may be replaced when dependencies are built.
