file(REMOVE_RECURSE
  "CMakeFiles/fig8_overheads_phi.dir/fig8_overheads_phi.cpp.o"
  "CMakeFiles/fig8_overheads_phi.dir/fig8_overheads_phi.cpp.o.d"
  "fig8_overheads_phi"
  "fig8_overheads_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overheads_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
