file(REMOVE_RECURSE
  "CMakeFiles/fig6_wait_time.dir/fig6_wait_time.cpp.o"
  "CMakeFiles/fig6_wait_time.dir/fig6_wait_time.cpp.o.d"
  "fig6_wait_time"
  "fig6_wait_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wait_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
