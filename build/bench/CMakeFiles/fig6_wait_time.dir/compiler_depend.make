# Empty compiler generated dependencies file for fig6_wait_time.
# This may be replaced when dependencies are built.
