file(REMOVE_RECURSE
  "CMakeFiles/fig9_pending_queue_haswell.dir/fig9_pending_queue_haswell.cpp.o"
  "CMakeFiles/fig9_pending_queue_haswell.dir/fig9_pending_queue_haswell.cpp.o.d"
  "fig9_pending_queue_haswell"
  "fig9_pending_queue_haswell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pending_queue_haswell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
