# Empty dependencies file for fig9_pending_queue_haswell.
# This may be replaced when dependencies are built.
