# Empty compiler generated dependencies file for fig4_idle_rate_haswell.
# This may be replaced when dependencies are built.
