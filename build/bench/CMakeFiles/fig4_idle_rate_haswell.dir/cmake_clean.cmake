file(REMOVE_RECURSE
  "CMakeFiles/fig4_idle_rate_haswell.dir/fig4_idle_rate_haswell.cpp.o"
  "CMakeFiles/fig4_idle_rate_haswell.dir/fig4_idle_rate_haswell.cpp.o.d"
  "fig4_idle_rate_haswell"
  "fig4_idle_rate_haswell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_idle_rate_haswell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
