# Empty dependencies file for fig5_idle_rate_phi.
# This may be replaced when dependencies are built.
