file(REMOVE_RECURSE
  "CMakeFiles/fig5_idle_rate_phi.dir/fig5_idle_rate_phi.cpp.o"
  "CMakeFiles/fig5_idle_rate_phi.dir/fig5_idle_rate_phi.cpp.o.d"
  "fig5_idle_rate_phi"
  "fig5_idle_rate_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_idle_rate_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
