file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduler.dir/ablation_scheduler.cpp.o"
  "CMakeFiles/ablation_scheduler.dir/ablation_scheduler.cpp.o.d"
  "ablation_scheduler"
  "ablation_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
