# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_characterize_sim "/root/repo/build/tools/gran_characterize" "--mode=sim" "--platform=haswell" "--workers=8" "--points=200000" "--steps=5" "--samples=1")
set_tests_properties(tool_characterize_sim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_characterize_native "/root/repo/build/tools/gran_characterize" "--workers=2" "--points=50000" "--steps=5" "--samples=1" "--min-partition=500")
set_tests_properties(tool_characterize_native PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
