file(REMOVE_RECURSE
  "CMakeFiles/gran_characterize.dir/gran_characterize.cpp.o"
  "CMakeFiles/gran_characterize.dir/gran_characterize.cpp.o.d"
  "gran_characterize"
  "gran_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
