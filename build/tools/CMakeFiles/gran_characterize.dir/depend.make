# Empty dependencies file for gran_characterize.
# This may be replaced when dependencies are built.
