# Empty dependencies file for gran_stencil.
# This may be replaced when dependencies are built.
