file(REMOVE_RECURSE
  "CMakeFiles/gran_stencil.dir/futurized.cpp.o"
  "CMakeFiles/gran_stencil.dir/futurized.cpp.o.d"
  "CMakeFiles/gran_stencil.dir/serial.cpp.o"
  "CMakeFiles/gran_stencil.dir/serial.cpp.o.d"
  "libgran_stencil.a"
  "libgran_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
