file(REMOVE_RECURSE
  "libgran_stencil.a"
)
