file(REMOVE_RECURSE
  "libgran_algo.a"
)
