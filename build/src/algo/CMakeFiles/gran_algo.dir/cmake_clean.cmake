file(REMOVE_RECURSE
  "CMakeFiles/gran_algo.dir/chunking.cpp.o"
  "CMakeFiles/gran_algo.dir/chunking.cpp.o.d"
  "libgran_algo.a"
  "libgran_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
