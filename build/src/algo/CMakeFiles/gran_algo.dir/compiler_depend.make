# Empty compiler generated dependencies file for gran_algo.
# This may be replaced when dependencies are built.
