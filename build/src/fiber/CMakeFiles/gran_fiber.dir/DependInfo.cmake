
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/fiber/context_x86_64.S" "/root/repo/build/src/fiber/CMakeFiles/gran_fiber.dir/context_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fiber/context.cpp" "src/fiber/CMakeFiles/gran_fiber.dir/context.cpp.o" "gcc" "src/fiber/CMakeFiles/gran_fiber.dir/context.cpp.o.d"
  "/root/repo/src/fiber/fiber.cpp" "src/fiber/CMakeFiles/gran_fiber.dir/fiber.cpp.o" "gcc" "src/fiber/CMakeFiles/gran_fiber.dir/fiber.cpp.o.d"
  "/root/repo/src/fiber/stack.cpp" "src/fiber/CMakeFiles/gran_fiber.dir/stack.cpp.o" "gcc" "src/fiber/CMakeFiles/gran_fiber.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
