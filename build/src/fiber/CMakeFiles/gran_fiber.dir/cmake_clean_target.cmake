file(REMOVE_RECURSE
  "libgran_fiber.a"
)
