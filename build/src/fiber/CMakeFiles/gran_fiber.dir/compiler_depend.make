# Empty compiler generated dependencies file for gran_fiber.
# This may be replaced when dependencies are built.
