file(REMOVE_RECURSE
  "CMakeFiles/gran_fiber.dir/context.cpp.o"
  "CMakeFiles/gran_fiber.dir/context.cpp.o.d"
  "CMakeFiles/gran_fiber.dir/context_x86_64.S.o"
  "CMakeFiles/gran_fiber.dir/fiber.cpp.o"
  "CMakeFiles/gran_fiber.dir/fiber.cpp.o.d"
  "CMakeFiles/gran_fiber.dir/stack.cpp.o"
  "CMakeFiles/gran_fiber.dir/stack.cpp.o.d"
  "libgran_fiber.a"
  "libgran_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/gran_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
