file(REMOVE_RECURSE
  "libgran_core.a"
)
