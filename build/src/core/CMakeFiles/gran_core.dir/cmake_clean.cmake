file(REMOVE_RECURSE
  "CMakeFiles/gran_core.dir/experiment.cpp.o"
  "CMakeFiles/gran_core.dir/experiment.cpp.o.d"
  "CMakeFiles/gran_core.dir/metrics.cpp.o"
  "CMakeFiles/gran_core.dir/metrics.cpp.o.d"
  "CMakeFiles/gran_core.dir/policy_engine.cpp.o"
  "CMakeFiles/gran_core.dir/policy_engine.cpp.o.d"
  "CMakeFiles/gran_core.dir/selectors.cpp.o"
  "CMakeFiles/gran_core.dir/selectors.cpp.o.d"
  "CMakeFiles/gran_core.dir/tuner.cpp.o"
  "CMakeFiles/gran_core.dir/tuner.cpp.o.d"
  "libgran_core.a"
  "libgran_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
