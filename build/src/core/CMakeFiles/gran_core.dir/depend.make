# Empty dependencies file for gran_core.
# This may be replaced when dependencies are built.
