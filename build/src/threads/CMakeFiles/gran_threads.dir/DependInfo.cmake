
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/policy.cpp" "src/threads/CMakeFiles/gran_threads.dir/policy.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/policy.cpp.o.d"
  "/root/repo/src/threads/policy_priority_local.cpp" "src/threads/CMakeFiles/gran_threads.dir/policy_priority_local.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/policy_priority_local.cpp.o.d"
  "/root/repo/src/threads/policy_static.cpp" "src/threads/CMakeFiles/gran_threads.dir/policy_static.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/policy_static.cpp.o.d"
  "/root/repo/src/threads/policy_work_stealing.cpp" "src/threads/CMakeFiles/gran_threads.dir/policy_work_stealing.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/policy_work_stealing.cpp.o.d"
  "/root/repo/src/threads/runtime.cpp" "src/threads/CMakeFiles/gran_threads.dir/runtime.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/runtime.cpp.o.d"
  "/root/repo/src/threads/task.cpp" "src/threads/CMakeFiles/gran_threads.dir/task.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/task.cpp.o.d"
  "/root/repo/src/threads/thread_manager.cpp" "src/threads/CMakeFiles/gran_threads.dir/thread_manager.cpp.o" "gcc" "src/threads/CMakeFiles/gran_threads.dir/thread_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gran_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gran_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/gran_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gran_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
