file(REMOVE_RECURSE
  "libgran_threads.a"
)
