file(REMOVE_RECURSE
  "CMakeFiles/gran_threads.dir/policy.cpp.o"
  "CMakeFiles/gran_threads.dir/policy.cpp.o.d"
  "CMakeFiles/gran_threads.dir/policy_priority_local.cpp.o"
  "CMakeFiles/gran_threads.dir/policy_priority_local.cpp.o.d"
  "CMakeFiles/gran_threads.dir/policy_static.cpp.o"
  "CMakeFiles/gran_threads.dir/policy_static.cpp.o.d"
  "CMakeFiles/gran_threads.dir/policy_work_stealing.cpp.o"
  "CMakeFiles/gran_threads.dir/policy_work_stealing.cpp.o.d"
  "CMakeFiles/gran_threads.dir/runtime.cpp.o"
  "CMakeFiles/gran_threads.dir/runtime.cpp.o.d"
  "CMakeFiles/gran_threads.dir/task.cpp.o"
  "CMakeFiles/gran_threads.dir/task.cpp.o.d"
  "CMakeFiles/gran_threads.dir/thread_manager.cpp.o"
  "CMakeFiles/gran_threads.dir/thread_manager.cpp.o.d"
  "libgran_threads.a"
  "libgran_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
