# Empty dependencies file for gran_threads.
# This may be replaced when dependencies are built.
