file(REMOVE_RECURSE
  "CMakeFiles/gran_sync.dir/barrier.cpp.o"
  "CMakeFiles/gran_sync.dir/barrier.cpp.o.d"
  "CMakeFiles/gran_sync.dir/condition_variable.cpp.o"
  "CMakeFiles/gran_sync.dir/condition_variable.cpp.o.d"
  "CMakeFiles/gran_sync.dir/event.cpp.o"
  "CMakeFiles/gran_sync.dir/event.cpp.o.d"
  "CMakeFiles/gran_sync.dir/latch.cpp.o"
  "CMakeFiles/gran_sync.dir/latch.cpp.o.d"
  "CMakeFiles/gran_sync.dir/mutex.cpp.o"
  "CMakeFiles/gran_sync.dir/mutex.cpp.o.d"
  "CMakeFiles/gran_sync.dir/semaphore.cpp.o"
  "CMakeFiles/gran_sync.dir/semaphore.cpp.o.d"
  "CMakeFiles/gran_sync.dir/timer_service.cpp.o"
  "CMakeFiles/gran_sync.dir/timer_service.cpp.o.d"
  "libgran_sync.a"
  "libgran_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
