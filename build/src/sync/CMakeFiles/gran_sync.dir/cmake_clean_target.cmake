file(REMOVE_RECURSE
  "libgran_sync.a"
)
