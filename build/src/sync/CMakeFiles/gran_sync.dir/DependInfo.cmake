
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/barrier.cpp" "src/sync/CMakeFiles/gran_sync.dir/barrier.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/barrier.cpp.o.d"
  "/root/repo/src/sync/condition_variable.cpp" "src/sync/CMakeFiles/gran_sync.dir/condition_variable.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/condition_variable.cpp.o.d"
  "/root/repo/src/sync/event.cpp" "src/sync/CMakeFiles/gran_sync.dir/event.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/event.cpp.o.d"
  "/root/repo/src/sync/latch.cpp" "src/sync/CMakeFiles/gran_sync.dir/latch.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/latch.cpp.o.d"
  "/root/repo/src/sync/mutex.cpp" "src/sync/CMakeFiles/gran_sync.dir/mutex.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/mutex.cpp.o.d"
  "/root/repo/src/sync/semaphore.cpp" "src/sync/CMakeFiles/gran_sync.dir/semaphore.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/semaphore.cpp.o.d"
  "/root/repo/src/sync/timer_service.cpp" "src/sync/CMakeFiles/gran_sync.dir/timer_service.cpp.o" "gcc" "src/sync/CMakeFiles/gran_sync.dir/timer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threads/CMakeFiles/gran_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gran_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/gran_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gran_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
