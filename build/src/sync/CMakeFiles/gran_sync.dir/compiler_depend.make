# Empty compiler generated dependencies file for gran_sync.
# This may be replaced when dependencies are built.
