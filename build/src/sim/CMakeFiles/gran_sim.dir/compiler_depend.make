# Empty compiler generated dependencies file for gran_sim.
# This may be replaced when dependencies are built.
