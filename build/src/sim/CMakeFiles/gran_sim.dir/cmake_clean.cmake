file(REMOVE_RECURSE
  "CMakeFiles/gran_sim.dir/des.cpp.o"
  "CMakeFiles/gran_sim.dir/des.cpp.o.d"
  "CMakeFiles/gran_sim.dir/machine_model.cpp.o"
  "CMakeFiles/gran_sim.dir/machine_model.cpp.o.d"
  "libgran_sim.a"
  "libgran_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
