file(REMOVE_RECURSE
  "libgran_sim.a"
)
