file(REMOVE_RECURSE
  "CMakeFiles/gran_topo.dir/affinity.cpp.o"
  "CMakeFiles/gran_topo.dir/affinity.cpp.o.d"
  "CMakeFiles/gran_topo.dir/platform_spec.cpp.o"
  "CMakeFiles/gran_topo.dir/platform_spec.cpp.o.d"
  "CMakeFiles/gran_topo.dir/topology.cpp.o"
  "CMakeFiles/gran_topo.dir/topology.cpp.o.d"
  "libgran_topo.a"
  "libgran_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
