file(REMOVE_RECURSE
  "libgran_topo.a"
)
