# Empty compiler generated dependencies file for gran_topo.
# This may be replaced when dependencies are built.
