file(REMOVE_RECURSE
  "CMakeFiles/gran_perf.dir/counters.cpp.o"
  "CMakeFiles/gran_perf.dir/counters.cpp.o.d"
  "CMakeFiles/gran_perf.dir/report.cpp.o"
  "CMakeFiles/gran_perf.dir/report.cpp.o.d"
  "CMakeFiles/gran_perf.dir/sampler.cpp.o"
  "CMakeFiles/gran_perf.dir/sampler.cpp.o.d"
  "libgran_perf.a"
  "libgran_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
