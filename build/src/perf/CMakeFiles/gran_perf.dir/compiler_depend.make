# Empty compiler generated dependencies file for gran_perf.
# This may be replaced when dependencies are built.
