file(REMOVE_RECURSE
  "libgran_perf.a"
)
