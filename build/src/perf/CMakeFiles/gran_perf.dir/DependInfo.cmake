
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/counters.cpp" "src/perf/CMakeFiles/gran_perf.dir/counters.cpp.o" "gcc" "src/perf/CMakeFiles/gran_perf.dir/counters.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/perf/CMakeFiles/gran_perf.dir/report.cpp.o" "gcc" "src/perf/CMakeFiles/gran_perf.dir/report.cpp.o.d"
  "/root/repo/src/perf/sampler.cpp" "src/perf/CMakeFiles/gran_perf.dir/sampler.cpp.o" "gcc" "src/perf/CMakeFiles/gran_perf.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
