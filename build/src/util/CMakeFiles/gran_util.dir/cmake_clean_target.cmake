file(REMOVE_RECURSE
  "libgran_util.a"
)
