file(REMOVE_RECURSE
  "CMakeFiles/gran_util.dir/cli.cpp.o"
  "CMakeFiles/gran_util.dir/cli.cpp.o.d"
  "CMakeFiles/gran_util.dir/env.cpp.o"
  "CMakeFiles/gran_util.dir/env.cpp.o.d"
  "CMakeFiles/gran_util.dir/log.cpp.o"
  "CMakeFiles/gran_util.dir/log.cpp.o.d"
  "CMakeFiles/gran_util.dir/stats.cpp.o"
  "CMakeFiles/gran_util.dir/stats.cpp.o.d"
  "CMakeFiles/gran_util.dir/table.cpp.o"
  "CMakeFiles/gran_util.dir/table.cpp.o.d"
  "CMakeFiles/gran_util.dir/timer.cpp.o"
  "CMakeFiles/gran_util.dir/timer.cpp.o.d"
  "libgran_util.a"
  "libgran_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gran_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
