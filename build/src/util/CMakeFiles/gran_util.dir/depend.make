# Empty dependencies file for gran_util.
# This may be replaced when dependencies are built.
