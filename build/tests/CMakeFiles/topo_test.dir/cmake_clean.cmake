file(REMOVE_RECURSE
  "CMakeFiles/topo_test.dir/topo_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo_test.cpp.o.d"
  "topo_test"
  "topo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
