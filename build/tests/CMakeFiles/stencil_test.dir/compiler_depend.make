# Empty compiler generated dependencies file for stencil_test.
# This may be replaced when dependencies are built.
