file(REMOVE_RECURSE
  "CMakeFiles/stencil_test.dir/stencil_test.cpp.o"
  "CMakeFiles/stencil_test.dir/stencil_test.cpp.o.d"
  "stencil_test"
  "stencil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
