file(REMOVE_RECURSE
  "CMakeFiles/timer_test.dir/timer_test.cpp.o"
  "CMakeFiles/timer_test.dir/timer_test.cpp.o.d"
  "timer_test"
  "timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
