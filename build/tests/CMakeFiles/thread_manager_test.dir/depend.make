# Empty dependencies file for thread_manager_test.
# This may be replaced when dependencies are built.
