file(REMOVE_RECURSE
  "CMakeFiles/thread_manager_test.dir/thread_manager_test.cpp.o"
  "CMakeFiles/thread_manager_test.dir/thread_manager_test.cpp.o.d"
  "thread_manager_test"
  "thread_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
