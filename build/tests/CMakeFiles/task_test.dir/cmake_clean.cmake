file(REMOVE_RECURSE
  "CMakeFiles/task_test.dir/task_test.cpp.o"
  "CMakeFiles/task_test.dir/task_test.cpp.o.d"
  "task_test"
  "task_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
