file(REMOVE_RECURSE
  "CMakeFiles/policy_engine_test.dir/policy_engine_test.cpp.o"
  "CMakeFiles/policy_engine_test.dir/policy_engine_test.cpp.o.d"
  "policy_engine_test"
  "policy_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
