# Empty dependencies file for policy_engine_test.
# This may be replaced when dependencies are built.
