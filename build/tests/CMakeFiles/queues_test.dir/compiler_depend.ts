# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for queues_test.
