# Empty dependencies file for queues_test.
# This may be replaced when dependencies are built.
