file(REMOVE_RECURSE
  "CMakeFiles/queues_test.dir/queues_test.cpp.o"
  "CMakeFiles/queues_test.dir/queues_test.cpp.o.d"
  "queues_test"
  "queues_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queues_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
