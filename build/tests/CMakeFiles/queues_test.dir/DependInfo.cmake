
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/queues_test.cpp" "tests/CMakeFiles/queues_test.dir/queues_test.cpp.o" "gcc" "tests/CMakeFiles/queues_test.dir/queues_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/gran_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gran_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/gran_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/gran_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/gran_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/gran_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gran_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gran_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
