# Empty compiler generated dependencies file for tuner_test.
# This may be replaced when dependencies are built.
