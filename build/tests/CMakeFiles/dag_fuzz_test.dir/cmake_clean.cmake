file(REMOVE_RECURSE
  "CMakeFiles/dag_fuzz_test.dir/dag_fuzz_test.cpp.o"
  "CMakeFiles/dag_fuzz_test.dir/dag_fuzz_test.cpp.o.d"
  "dag_fuzz_test"
  "dag_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
