# Empty dependencies file for dag_fuzz_test.
# This may be replaced when dependencies are built.
