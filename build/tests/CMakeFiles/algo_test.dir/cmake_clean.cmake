file(REMOVE_RECURSE
  "CMakeFiles/algo_test.dir/algo_test.cpp.o"
  "CMakeFiles/algo_test.dir/algo_test.cpp.o.d"
  "algo_test"
  "algo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
