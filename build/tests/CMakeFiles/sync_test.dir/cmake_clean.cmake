file(REMOVE_RECURSE
  "CMakeFiles/sync_test.dir/sync_test.cpp.o"
  "CMakeFiles/sync_test.dir/sync_test.cpp.o.d"
  "sync_test"
  "sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
