// Fig. 5 (a–c): idle-rate and execution time vs. partition size on the
// Xeon Phi with 16 / 32 / 60 cores (paper: 5 time steps on the Phi).
// Same expected shape as Fig. 4 shifted right: the Phi's slow cores make
// tasks ~50x longer, so the overhead-dominated region extends further.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 5: Idle-rate, Intel Xeon Phi\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"idle-rate (%)", [](const core::sweep_point& p) { return p.m.idle_rate * 100.0; }, 1},
  };
  run_metric_figure(opt, "fig5", "xeon-phi", {16, 32, 60}, 5, columns);
  return 0;
}
