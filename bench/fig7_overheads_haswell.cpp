// Fig. 7 (a–c): execution time decomposed into HPX-thread-management
// overhead (To, Eq. 4) and wait time (Tw, Eq. 6) on Haswell, 8 / 16 / 28
// cores.
//
// Expected shape (paper §IV-B/C/D): TM overhead dominates and tracks
// execution time at fine grains; wait time tracks it through the mid range;
// their sum (TM & WT) mirrors execution time across the whole sweep, the
// gap to exec time being the useful computation. Wait time goes negative
// for very coarse partitions.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 7: HPX-Thread Management (TM) and Wait Time (WT), Haswell\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"WT (s)", [](const core::sweep_point& p) { return p.m.wait_time_s; }, 4},
      {"HPX-TM (s)", [](const core::sweep_point& p) { return p.m.tm_overhead_s; }, 4},
      {"TM & WT (s)", [](const core::sweep_point& p) { return p.m.tm_plus_wait_s; }, 4},
  };
  run_metric_figure(opt, "fig7", "haswell", {8, 16, 28}, 50, columns);
  return 0;
}
