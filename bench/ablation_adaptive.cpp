// Ablation: closed-loop granularity against the fixed-grain sweep — the
// paper's stated end goal ("dynamically adapting task size to optimize
// parallel performance"), three ways:
//
//   best-fixed      the winner of a log-spaced static chunk sweep (Fig. 3's
//                   oracle: pick the grain after seeing the whole curve)
//   adaptive_chunk  the wave-at-a-time idle-rate tuner (core/tuner.hpp),
//                   started deliberately too fine
//   lazy_chunk      demand-driven lazy splitting (core/split_controller.hpp
//                   + algo/splittable.hpp) — no grain parameter at all
//
// Run native (this host's runtime), simulated (sim/split_sim.hpp, the same
// sweep in deterministic virtual time), or both. The acceptance gate
// (--check) requires lazy_chunk to reach --ratio (default 0.9) of the best
// fixed grain's throughput for every kernel/mode cell — the controller must
// land near the sweet spot *without being told the grain*.
//
//   $ ./ablation_adaptive --items=1000000 --samples=3 --mode=both
//   $ ./ablation_adaptive --check --ratio=0.9 --json=results/BENCH_adaptive.json
//
// Flags: --items, --workers, --samples, --item-ns (target per-item cost),
// --mode=native|sim|both, --kernel=busy_spin|memory_stream|both,
// --sim-cores (simulated core count, independent of native --workers),
// --sim-imbalance (per-task cost spread in the simulator), --platform,
// --json=PATH, --check, --ratio.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/parallel_for.hpp"
#include "graph/kernels.hpp"
#include "perf/observability.hpp"
#include "sim/split_sim.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

struct cell {
  std::string mode;      // "native" | "sim"
  std::string kernel;    // "busy_spin" | "memory_stream"
  std::string strategy;  // "fixed" | "adaptive" | "lazy"
  std::uint64_t chunk = 0;        // fixed: the swept chunk; lazy: 0
  double time_med_s = 0.0;
  double items_per_s = 0.0;
  std::uint64_t tasks = 0;        // tasks actually executed (median run)
  std::uint64_t splits = 0;       // lazy only
  std::uint64_t split_denied = 0; // lazy only
  double exec_s = 0.0;            // Σ t_exec across workers (native)
};

struct gate_row {
  std::string mode, kernel;
  std::uint64_t best_chunk = 0;
  double best_fixed_s = 0, adaptive_s = 0, lazy_s = 0;
  double lazy_vs_best = 0, adaptive_vs_best = 0;
};

// Per-item native kernels, each ~item_ns of work. Both write a result the
// optimizer cannot discard; indices are touched exactly once per run, so the
// plain stores race with nothing.
struct native_workload {
  long spin_iters = 0;                  // busy_spin: calibrated iterations
  std::vector<std::uint64_t>* stream = nullptr;  // memory_stream: 8 words/item

  void operator()(std::size_t i) const {
    if (stream != nullptr) {
      std::uint64_t* w = stream->data() + i * 8;
      std::uint64_t acc = i;
      for (int k = 0; k < 8; ++k) {
        acc += w[k];
        w[k] = acc ^ (w[k] >> 1);
      }
    } else {
      // Latency-bound FP dependence chain with a single volatile sink per
      // item. A `volatile` accumulator inside the loop would be
      // store-forwarding bound, whose throughput on Skylake-era cores swings
      // ~2x with the code placement of each template instantiation — the
      // comparison would measure the linker, not the chunking strategy.
      double acc = 1.0;
      for (long k = 0; k < spin_iters; ++k) acc = acc * 1.0000001 + 0.1;
      volatile double sink = acc;
      (void)sink;
    }
  }
};

// Log-spaced fixed-grain sweep (the Fig. 3 axis), always including the
// one-chunk-per-worker point lazy starts from.
std::vector<std::uint64_t> sweep_chunks(std::uint64_t items, int workers) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t c = 16; c * 4 <= items; c *= 4) out.push_back(c);
  const std::uint64_t per_worker =
      std::max<std::uint64_t>(1, items / static_cast<std::uint64_t>(workers));
  if (out.empty() || out.back() < per_worker) out.push_back(per_worker);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  const auto items = static_cast<std::uint64_t>(args.get_int("items", 1'000'000));
  // Default to at most one worker per CPU: this is a throughput comparison,
  // and on an oversubscribed host every strategy just measures the OS
  // scheduler (splitting to "feed" a worker that shares your CPU can only
  // add handoffs). The simulator leg models multi-core behaviour regardless
  // of the host; --workers overrides for experiments.
  const int workers = static_cast<int>(args.get_int(
      "workers", std::max(1, std::min(4, topology::host().num_cpus()))));
  const int samples = static_cast<int>(args.get_int("samples", 3));
  const double item_ns = args.get_double("item-ns", 150.0);
  const double sim_imbalance = args.get_double("sim-imbalance", 0.5);
  const std::string mode = args.get("mode", "both");
  const std::string kernel_filter = args.get("kernel", "both");
  const std::string strategy_filter = args.get("strategy", "all");
  const std::string platform = args.get("platform", "haswell");
  const bool check = args.has("check");
  const double ratio_gate = args.get_double("ratio", 0.9);

  const bool run_native = mode == "native" || mode == "both";
  const bool run_sim = mode == "sim" || mode == "both";
  const bool run_spin = kernel_filter == "busy_spin" || kernel_filter == "both";
  const bool run_stream =
      kernel_filter == "memory_stream" || kernel_filter == "both";

  std::vector<cell> cells;
  std::vector<gate_row> gates;

  std::cout << "Ablation: best-fixed vs adaptive_chunk vs lazy_chunk ("
            << items << " items, ~" << item_ns << " ns/item, " << workers
            << " workers, median of " << samples << ")\n";

  // ---- native -------------------------------------------------------------
  if (run_native) {
    scheduler_config cfg;
    cfg.num_workers = workers;
    cfg.pin_workers = false;
    thread_manager tm(cfg);

    std::vector<std::pair<std::string, native_workload>> kernels;
    const long spin_iters = std::max<long>(
        1, static_cast<long>(item_ns * graph::calibrated_rates().spin_iters_per_ns));
    std::vector<std::uint64_t> stream_buf;
    if (run_spin) kernels.push_back({"busy_spin", {spin_iters, nullptr}});
    if (run_stream) {
      stream_buf.assign(items * 8, 0x9e3779b97f4a7c15ull);
      kernels.push_back({"memory_stream", {0, &stream_buf}});
    }

    for (auto& [kname, fn] : kernels) {
      // One untimed pass: calibration, first-touch, worker warmup.
      algo::parallel_for(tm, 0, items, fn, algo::static_chunk{items / 4});

      // Build every requested config up front, then take the samples
      // interleaved — one pass over all configs per sample round. Cloud hosts
      // drift between fast and slow phases on a scale of whole seconds;
      // consecutive sampling would charge that drift to whichever strategy
      // happened to run last, while round-robin sampling spreads it evenly
      // across the comparison.
      const bool want_fixed = strategy_filter == "all" || strategy_filter == "fixed";
      std::vector<std::pair<algo::chunking, cell>> runs;
      if (want_fixed)
        for (const std::uint64_t chunk : sweep_chunks(items, workers))
          runs.push_back({algo::static_chunk{static_cast<std::size_t>(chunk)},
                          cell{"native", kname, "fixed", chunk}});
      if (strategy_filter == "all" || strategy_filter == "adaptive")
        runs.push_back(
            {algo::adaptive_chunk{.initial = 16}, cell{"native", kname, "adaptive"}});
      if (strategy_filter == "all" || strategy_filter == "lazy")
        runs.push_back({algo::lazy_chunk{}, cell{"native", kname, "lazy"}});

      std::vector<sample_stats> stats(runs.size());
      for (int s = 0; s < samples; ++s)
        for (std::size_t i = 0; i < runs.size(); ++i) {
          cell& c = runs[i].second;
          const auto before = tm.counter_totals();
          stopwatch clock;
          algo::parallel_for(tm, 0, items, fn, runs[i].first);
          stats[i].add(clock.elapsed_s());
          const auto after = tm.counter_totals();
          c.tasks = after.tasks_executed - before.tasks_executed;
          c.splits = after.tasks_split - before.tasks_split;
          c.split_denied = after.splits_denied - before.splits_denied;
          c.exec_s = static_cast<double>(after.exec_ns - before.exec_ns) * 1e-9;
        }

      gate_row g{"native", kname};
      g.best_fixed_s = 1e300;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        cell& c = runs[i].second;
        c.time_med_s = stats[i].median();
        c.items_per_s = static_cast<double>(items) / c.time_med_s;
        if (c.strategy == "fixed" && c.time_med_s < g.best_fixed_s) {
          g.best_fixed_s = c.time_med_s;
          g.best_chunk = c.chunk;
        }
        if (c.strategy == "adaptive") g.adaptive_s = c.time_med_s;
        if (c.strategy == "lazy") g.lazy_s = c.time_med_s;
        cells.push_back(c);
      }
      // The gate needs both sides; strategy-filtered runs just print cells.
      if (want_fixed && g.lazy_s > 0) {
        g.lazy_vs_best = g.best_fixed_s / g.lazy_s;
        g.adaptive_vs_best =
            g.adaptive_s > 0 ? g.best_fixed_s / g.adaptive_s : 0.0;
        gates.push_back(g);
      }
    }
  }

  // ---- simulated ----------------------------------------------------------
  // Deterministic virtual-time rerun of the same sweep. Per-task imbalance
  // (--sim-imbalance) gives lazy splitting hot blocks to fix, the situation
  // fixed grains can only hedge against.
  if (run_sim) {
    // The sim leg deliberately does NOT inherit the native worker count: its
    // job is to exercise multi-core splitting semantics even on hosts too
    // small to show them (the native leg on a 1-CPU box degenerates to
    // serial, where the right answer is "never split").
    const int sim_cores = static_cast<int>(args.get_int("sim-cores", 4));
    sim::split_sim_config base;
    base.model = sim::make_machine_model(platform);
    base.cores = sim_cores;
    base.items = items;
    base.imbalance = sim_imbalance;
    for (const char* kname_c : {"busy_spin", "memory_stream"}) {
      const std::string kname = kname_c;
      if (kname == "busy_spin" && !run_spin) continue;
      if (kname == "memory_stream" && !run_stream) continue;
      // Streaming items cost more per index than spin items at equal target
      // ns once bandwidth saturates; model that as a flat 2x.
      base.item_ns = kname == "busy_spin" ? item_ns : item_ns * 2.0;
      base.seed = kname == "busy_spin" ? 11 : 17;

      gate_row g{"sim", kname};
      g.best_fixed_s = 1e300;
      for (const std::uint64_t chunk : sweep_chunks(items, sim_cores)) {
        sim::split_sim_config c = base;
        c.lazy = false;
        c.chunk = chunk;
        const auto r = sim::run_split_sim(c);
        cells.push_back({"sim", kname, "fixed", chunk, r.makespan_s,
                         static_cast<double>(items) / r.makespan_s, r.tasks, 0, 0});
        if (r.makespan_s < g.best_fixed_s) {
          g.best_fixed_s = r.makespan_s;
          g.best_chunk = chunk;
        }
      }
      {
        sim::split_sim_config c = base;
        c.lazy = true;
        const auto r = sim::run_split_sim(c);
        cells.push_back({"sim", kname, "lazy", 0, r.makespan_s,
                         static_cast<double>(items) / r.makespan_s, r.tasks,
                         r.splits, r.split_denied});
        g.lazy_s = r.makespan_s;
      }
      g.adaptive_s = 0;  // the wave tuner has no simulator counterpart
      g.lazy_vs_best = g.best_fixed_s / g.lazy_s;
      gates.push_back(g);
    }
  }

  // ---- report -------------------------------------------------------------
  table_writer table(
      {"mode", "kernel", "strategy", "chunk", "time (s)", "Mitems/s", "tasks",
       "splits", "exec (s)"});
  for (const auto& c : cells)
    table.add_row({c.mode, c.kernel, c.strategy,
                   c.chunk ? format_count(static_cast<std::int64_t>(c.chunk)) : "-",
                   format_number(c.time_med_s, 5),
                   format_number(c.items_per_s / 1e6, 2),
                   format_count(static_cast<std::int64_t>(c.tasks)),
                   format_count(static_cast<std::int64_t>(c.splits)),
                   c.exec_s > 0 ? format_number(c.exec_s, 5) : "-"});
  table.print(std::cout);

  bool pass = true;
  for (const auto& g : gates) {
    std::cout << g.mode << "/" << g.kernel << ": best fixed chunk "
              << g.best_chunk << " at " << format_number(g.best_fixed_s, 5)
              << " s; lazy " << format_number(g.lazy_s, 5) << " s ("
              << format_number(g.lazy_vs_best * 100, 1) << "% of best)";
    if (g.adaptive_s > 0)
      std::cout << "; adaptive " << format_number(g.adaptive_s, 5) << " s ("
                << format_number(g.adaptive_vs_best * 100, 1) << "%)";
    std::cout << "\n";
    if (g.lazy_vs_best < ratio_gate) pass = false;
  }

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"ablation_adaptive\",\n  \"items\": " << items
      << ",\n  \"workers\": " << workers << ",\n  \"item_ns\": " << item_ns
      << ",\n  \"samples\": " << samples << ",\n  \"sim_imbalance\": "
      << sim_imbalance << ",\n  \"ratio_gate\": " << ratio_gate
      << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      f << "    {\"mode\": \"" << c.mode << "\", \"kernel\": \"" << c.kernel
        << "\", \"strategy\": \"" << c.strategy << "\", \"chunk\": " << c.chunk
        << ", \"time_med_s\": " << c.time_med_s
        << ", \"items_per_s\": " << c.items_per_s << ", \"tasks\": " << c.tasks
        << ", \"splits\": " << c.splits
        << ", \"split_denied\": " << c.split_denied << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"summary\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const auto& g = gates[i];
      f << "    {\"mode\": \"" << g.mode << "\", \"kernel\": \"" << g.kernel
        << "\", \"best_fixed_chunk\": " << g.best_chunk
        << ", \"best_fixed_s\": " << g.best_fixed_s
        << ", \"adaptive_s\": " << g.adaptive_s << ", \"lazy_s\": " << g.lazy_s
        << ", \"lazy_vs_best\": " << g.lazy_vs_best
        << ", \"adaptive_vs_best\": " << g.adaptive_vs_best
        << ", \"pass\": " << (g.lazy_vs_best >= ratio_gate ? "true" : "false")
        << "}" << (i + 1 < gates.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }

  if (check && !pass) {
    std::cout << "FAIL: lazy_chunk below " << format_number(ratio_gate * 100, 0)
              << "% of best fixed grain\n";
    return 1;
  }
  return 0;
}
