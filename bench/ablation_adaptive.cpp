// Ablation: the adaptive grain-size tuner (core/tuner.hpp) against static
// chunk sizes — the paper's stated end goal ("dynamically adapting task
// size to optimize parallel performance"), evaluated on this host's real
// runtime.
//
// Workload: a synthetic parallel for over N items whose per-item cost is a
// small stencil-like kernel. Compared: deliberately-too-fine static chunk,
// deliberately-too-coarse static chunk, the sweep's best static chunk, and
// the tuner started from the too-fine chunk.
#include <algorithm>
#include <atomic>
#include <iostream>
#include <vector>

#include "core/tuner.hpp"
#include "perf/observability.hpp"
#include "sync/latch.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// ~100 ns of work per item: comparable to a very fine stencil task.
double item_kernel(std::size_t i) {
  double acc = static_cast<double>(i);
  for (int k = 0; k < 24; ++k) acc = acc * 0.99999 + 0.5;
  return acc;
}

double run_static(thread_manager& tm, std::size_t n, std::size_t chunk,
                  std::atomic<double>& sink) {
  stopwatch clock;
  const std::size_t tasks = (n + chunk - 1) / chunk;
  latch done(static_cast<std::int64_t>(tasks));
  for (std::size_t first = 0; first < n; first += chunk) {
    const std::size_t last = std::min(n, first + chunk);
    tm.spawn([&done, &sink, first, last] {
      double acc = 0;
      for (std::size_t i = first; i < last; ++i) acc += item_kernel(i);
      sink.fetch_add(acc, std::memory_order_relaxed);
      done.count_down();
    });
  }
  done.wait();
  return clock.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));
  const std::size_t n = static_cast<std::size_t>(args.get_int("items", 2'000'000));
  const int workers = static_cast<int>(
      args.get_int("workers", std::min(4, topology::host().num_cpus() * 2)));

  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  std::atomic<double> sink{0.0};

  std::cout << "Ablation: adaptive grain tuner vs. static chunks (" << n << " items, "
            << workers << " workers)\n";

  table_writer table({"strategy", "chunk", "time (s)"});

  const std::vector<std::size_t> static_chunks = {16, 256, 4096, 65536, n / 4};
  double best_static = 1e300;
  std::size_t best_chunk = 0;
  for (const std::size_t chunk : static_chunks) {
    const double t = run_static(tm, n, chunk, sink);
    if (t < best_static) {
      best_static = t;
      best_chunk = chunk;
    }
    table.add_row({"static", format_count(static_cast<std::int64_t>(chunk)),
                   format_number(t, 4)});
  }

  core::tuner_options opts;
  opts.min_chunk = 16;
  opts.max_chunk = n / static_cast<std::size_t>(workers);
  const auto report = core::adaptive_chunked_for_each(
      tm, n, /*initial_chunk=*/16,
      [&sink](std::size_t first, std::size_t last) {
        double acc = 0;
        for (std::size_t i = first; i < last; ++i) acc += item_kernel(i);
        sink.fetch_add(acc, std::memory_order_relaxed);
      },
      opts);
  table.add_row({"adaptive (from 16)",
                 format_count(static_cast<std::int64_t>(report.final_chunk)),
                 format_number(report.elapsed_s, 4)});

  table.print(std::cout);
  std::cout << "best static chunk: " << best_chunk << " at "
            << format_number(best_static, 4) << " s; adaptive finished at chunk "
            << report.final_chunk << " in " << format_number(report.elapsed_s, 4)
            << " s over " << report.waves << " waves\n";

  std::cout << "tuner decisions (idle-rate -> chunk):\n";
  for (const auto& d : report.decisions)
    std::cout << "  " << format_number(d.idle_rate * 100, 1) << "% : " << d.chunk_before
              << " -> " << d.chunk_after << "\n";
  return 0;
}
