// Fig. 6: wait time per HPX-thread (Eq. 5) vs. partition size on Haswell
// for 4 / 8 / 16 / 28 cores, over the fine-to-medium band the paper plots
// (10 k – 100 k grid points per partition).
//
// Expected shape: wait time per task increases with the number of cores and
// with the partition size — the signature of shared-memory-bandwidth
// contention.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  fig_options opt = parse_fig_options(args);
  // The paper's Fig. 6 zooms into 10k..100k partitions.
  if (opt.min_partition == 0) opt.min_partition = 10'000;
  if (opt.max_partition == 0) opt.max_partition = 100'000;
  if (opt.per_decade == 0) opt.per_decade = 9;

  const fig_plan plan = make_plan(opt, "haswell", {4, 8, 16, 28}, 50);

  std::cout << "Fig. 6: Wait Time per HPX-Thread (us), " << plan.platform_label << "\n";

  std::vector<std::string> header{"partition"};
  for (const int c : plan.cores) header.push_back(std::to_string(c) + " cores (us)");
  table_writer table(std::move(header));

  std::vector<double> baselines;
  std::vector<std::vector<core::sweep_point>> series;
  for (const int c : plan.cores)
    series.push_back(run_series(plan, c, baselines, opt.quiet));

  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    std::vector<std::string> row{
        format_count(static_cast<std::int64_t>(series.front()[i].partition_size))};
    for (const auto& s : series)
      row.push_back(format_number(s[i].m.wait_per_task_ns / 1e3, 2));
    table.add_row(std::move(row));
  }
  emit_table(table, "Fig. 6: wait time per task (us) vs. partition size",
             opt.csv_prefix, "fig6_" + plan.platform_label);
  return 0;
}
