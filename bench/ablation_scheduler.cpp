// Ablation: scheduling policy vs. task granularity.
//
// The paper remarks (§I-A) that "different schedulers optimize performance
// for different task size" and defers the study to future work; this bench
// runs it on the simulator: priority-local-FIFO (the paper's scheduler),
// static-FIFO (no stealing), and work-stealing-LIFO, across the granularity
// sweep. Expected: static-FIFO collapses at coarse grains (no load
// balancing), work-stealing pays its spawn-time conversion at fine grains,
// priority-local tracks the better of the two.
//
// --mode=native runs the same comparison on this host's real runtime, with
// channel-steal (message-passing stealing, no simulator counterpart) as a
// fourth column.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  struct policy_case {
    const char* label;
    sim::sim_policy sim_policy;
    const char* native_policy;
  };
  std::vector<policy_case> policies = {
      {"priority-local-fifo", sim::sim_policy::priority_local, "priority-local-fifo"},
      {"static-fifo", sim::sim_policy::static_fifo, "static-fifo"},
      {"work-stealing-lifo", sim::sim_policy::work_stealing, "work-stealing-lifo"},
  };
  // Message-passing stealing exists only in the real runtime — the simulator
  // has no channel model — so the fourth column is native-mode only.
  if (opt.mode == "native")
    policies.push_back(
        {"channel-steal", sim::sim_policy::priority_local, "channel-steal"});

  fig_plan plan = make_plan(opt, "haswell", {16}, 50);
  const int cores = plan.cores.front();

  std::cout << "Ablation: scheduling policies across task granularity ("
            << plan.platform_label << ", " << cores << " cores)\n";

  std::vector<std::string> header{"partition"};
  for (const auto& pc : policies) header.push_back(std::string(pc.label) + " (s)");
  table_writer table(std::move(header));

  std::vector<std::vector<core::sweep_point>> series;
  for (const auto& pc : policies) {
    std::unique_ptr<core::experiment_backend> backend;
    if (opt.mode == "native") {
      backend = std::make_unique<core::native_backend>(pc.native_policy);
    } else {
      auto sb = std::make_unique<sim::sim_backend>(
          opt.platform.empty() ? "haswell" : opt.platform);
      sb->set_policy(pc.sim_policy);
      backend = std::move(sb);
    }
    core::sweep_config cfg;
    cfg.base = plan.base;
    cfg.partition_sizes = plan.partitions;
    cfg.cores = cores;
    cfg.samples = plan.samples;
    cfg.measure_baseline = false;  // exec-time comparison only
    core::granularity_experiment exp(*backend, cfg);
    series.push_back(exp.run([&](const core::sweep_point& p) {
      if (!opt.quiet)
        std::fprintf(stderr, "  [%s] partition %-10zu exec %.4f s\n", pc.label,
                     p.partition_size, p.exec_time_s.mean());
    }));
  }

  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    std::vector<std::string> row{
        format_count(static_cast<std::int64_t>(series.front()[i].partition_size))};
    for (const auto& s : series) row.push_back(format_number(s[i].exec_time_s.mean(), 4));
    table.add_row(std::move(row));
  }
  emit_table(table, "Ablation: execution time (s) by scheduling policy",
             opt.csv_prefix, "ablation_scheduler");
  return 0;
}
