// Fig. 8 (a–c): execution time, HPX-thread-management overhead (Eq. 4) and
// wait time (Eq. 6) on the Xeon Phi, 16 / 32 / 60 cores, 5 time steps.
// Same decomposition as Fig. 7 on the manycore platform.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 8: HPX-Thread Management (TM) and Wait Time (WT), Xeon Phi\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"WT (s)", [](const core::sweep_point& p) { return p.m.wait_time_s; }, 4},
      {"HPX-TM (s)", [](const core::sweep_point& p) { return p.m.tm_overhead_s; }, 4},
      {"TM & WT (s)", [](const core::sweep_point& p) { return p.m.tm_plus_wait_s; }, 4},
  };
  run_metric_figure(opt, "fig8", "xeon-phi", {16, 32, 60}, 5, columns);
  return 0;
}
