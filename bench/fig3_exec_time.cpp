// Fig. 3 (a–d): execution time vs. task granularity (partition size) for an
// increasing number of cores, on all four platforms.
//
// Paper setup: 100 M grid points, 50 time steps (5 on the Xeon Phi), strong
// scaling. Default here is a 10 M-point grid so the whole figure regenerates
// in seconds; pass --full for paper scale. Expected shape per platform:
// execution time high for very fine grains (task-management overhead), flat
// minimum in the 20 k–1 M range, rising again for coarse grains (starvation),
// with more cores lowering the floor until wait time saturates it.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

namespace {

struct subplot {
  const char* platform;
  std::vector<int> cores;
  std::size_t steps;
};

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  const std::vector<subplot> subplots = {
      {"sandy-bridge", {1, 2, 4, 8, 12, 16}, 50},
      {"ivy-bridge", {1, 2, 4, 8, 16, 20}, 50},
      {"haswell", {1, 2, 4, 8, 16, 28}, 50},
      {"xeon-phi", {1, 2, 4, 8, 16, 32, 60}, 5},
  };

  std::cout << "Fig. 3: Execution Time vs. Task Granularity, four platforms\n";

  for (const auto& sp : subplots) {
    if (!opt.platform.empty() && opt.platform != sp.platform) continue;
    const fig_plan plan = make_plan(opt, sp.platform, sp.cores, sp.steps);

    // Header: partition | one column per core count.
    std::vector<std::string> header{"partition"};
    for (const int c : plan.cores) header.push_back(std::to_string(c) + " cores (s)");
    table_writer table(std::move(header));

    std::vector<double> baselines;
    std::vector<std::vector<core::sweep_point>> series;
    for (const int c : plan.cores)
      series.push_back(run_series(plan, c, baselines, opt.quiet));

    for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
      std::vector<std::string> row{format_count(
          static_cast<std::int64_t>(series.front()[i].partition_size))};
      for (const auto& s : series) row.push_back(format_number(s[i].exec_time_s.mean(), 4));
      table.add_row(std::move(row));
    }

    emit_table(table,
               "Fig. 3 (" + plan.platform_label + "): execution time (s) vs. partition size",
               opt.csv_prefix, "fig3_" + plan.platform_label);
  }
  return 0;
}
