// Fig. 9 (a–c): pending-queue accesses and execution time vs. partition
// size on Haswell, 8 / 16 / 28 cores.
//
// Expected shape (paper §IV-E): accesses are highest for very fine grains
// (every task passes through a pending queue), reach a minimum in the mid
// range, and rise again at coarse grains where starving workers probe the
// queues. The minimum marks an adequate grain size without needing any
// timestamp counters.
//
// --select evaluates the paper's claim that the access minimum lands within
// ~13 % of the best execution time.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 9: Pending Queue Accesses, Intel Haswell\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"pending accesses (k)",
       [](const core::sweep_point& p) { return static_cast<double>(p.mean.pending_accesses) / 1e3; },
       1},
      {"pending misses (k)",
       [](const core::sweep_point& p) { return static_cast<double>(p.mean.pending_misses) / 1e3; },
       1},
  };

  std::vector<std::vector<core::sweep_point>> series;
  run_metric_figure(opt, "fig9", "haswell", {8, 16, 28}, 50, columns, &series);

  if (opt.select && !series.empty()) {
    std::cout << "\nSelector check (paper §IV-E, largest core count):\n";
    const auto& sweep = series.back();
    const auto best = core::best_exec_time(sweep);
    const auto sel = core::pending_queue_minimum(sweep);
    std::cout << "  best partition: " << best.partition_size << " at "
              << format_number(best.exec_time_s, 4) << " s\n"
              << "  min pending-accesses picks: " << sel.partition_size << " at "
              << format_number(sel.exec_time_s, 4) << " s ("
              << format_number(sel.regret * 100.0, 1) << "% above optimum)\n";
  }
  return 0;
}
