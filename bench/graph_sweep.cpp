// Granularity sweeps over parameterized task graphs (src/graph) — Task
// Bench's question asked with the paper's methodology: how does the
// overhead-vs-starvation U-curve move when the dependence *pattern*
// changes, with the per-task grain as the independent variable?
//
//   $ ./graph_sweep                                   # stencil1d, native
//   $ ./graph_sweep --pattern=random --fraction=0.5
//   $ ./graph_sweep --pattern=all --mode=sim --platform=haswell --cores=28
//   $ ./graph_sweep --full                            # finer grain axis
//
//   --pattern=NAME     trivial|serial_chain|stencil1d|fft|binary_tree|
//                      nearest|spread|random, or `all` (default stencil1d)
//   --mode=native|sim  real runtime of this host vs modeled platform
//   --width=N          tasks per step (default 256)
//   --steps=N          steps (default 20)
//   --radius=N         stencil/nearest window; spread fan count (default 1)
//   --fraction=F       random: per-candidate edge probability (default 0.25)
//   --graph-seed=N     random: structure seed (default 1)
//   --kernel=NAME      busy_spin|memory_stream|dgemm_like (default busy_spin)
//   --imbalance=F      per-task grain spread in [0,1) (default 0)
//   --grain-min=NS --grain-max=NS --per-decade=N   geometric grain axis
//                      (defaults 1e3 .. 1e6 ns, 2/decade; --full: 1/2 decade
//                      lower and 4/decade)
//   --samples=N        repetitions per grain (default 3)
//   --workers=N        native worker threads (default: all CPUs)
//   --policy=NAME      native scheduling policy (default: GRAN_POLICY env,
//                      then priority-local-fifo)
//   --window=N         native construction window, rows (default 0 = none)
//   --platform=NAME    sim platform (default haswell)  --cores=N (default: all)
//   --csv=PREFIX       also write PREFIXgraph_sweep_<pattern>.csv
//   --report           native mode: trace the whole sweep and print the
//                      offline analysis (critical path, per-task waits,
//                      Eq. 1–3 recomputed from events) after the table;
//                      see docs/ANALYSIS.md
//
// Observability flags (--trace-out, --trace-bin, --sample-interval-us, ...)
// are honored in native mode; see docs/TRACING.md.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_experiment.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/analysis.hpp"
#include "perf/observability.hpp"
#include "threads/policy.hpp"
#include "sim/graph_sim.hpp"
#include "sim/machine_model.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

int run_pattern(core::graph_backend& backend, graph::pattern kind,
                const cli_args& args, bool full, int cores) {
  core::graph_sweep_config cfg;
  cfg.graph.kind = kind;
  cfg.graph.width = static_cast<std::uint32_t>(args.get_int("width", 256));
  cfg.graph.steps = static_cast<std::uint32_t>(args.get_int("steps", 20));
  cfg.graph.radius = static_cast<std::uint32_t>(args.get_int("radius", 1));
  cfg.graph.fraction = args.get_double("fraction", 0.25);
  cfg.graph.seed = static_cast<std::uint64_t>(args.get_int("graph-seed", 1));
  if (const std::string err = cfg.graph.validate(); !err.empty()) {
    std::cerr << "invalid graph spec: " << err << "\n";
    return 1;
  }

  cfg.kernel.kind = graph::kernel_from_name(args.get("kernel", "busy_spin"));
  cfg.kernel.imbalance = args.get_double("imbalance", 0.0);
  cfg.cores = cores;
  cfg.samples = static_cast<int>(args.get_int("samples", 3));
  cfg.grains_ns = core::grain_sweep_ns(
      args.get_double("grain-min", full ? 316.0 : 1e3),
      args.get_double("grain-max", 1e6),
      static_cast<int>(args.get_int("per-decade", full ? 4 : 2)));

  std::cout << "\n" << cfg.graph.describe() << " on " << backend.name() << ", "
            << cfg.cores << " cores: " << cfg.graph.total_tasks() << " tasks, "
            << cfg.graph.total_edges() << " edges, " << cfg.samples
            << " samples per grain\n";

  core::graph_granularity_experiment exp(backend, cfg);
  const auto points = exp.run([](const core::graph_sweep_point& p) {
    std::fprintf(stderr, "  grain %-10.0f exec %.4f s  idle %.1f%%\n", p.grain_ns,
                 p.exec_time_s.mean(), p.m.idle_rate * 100);
  });

  // Eq. 1–6 metrics per grain; exec time reported as mean / median / min
  // over the samples (Task Bench reports minimum-over-samples — min is the
  // least noise-contaminated, mean feeds the paper's averaged counters).
  table_writer table({"grain (us)", "tasks", "edges", "td (us)", "exec mean (s)",
                      "exec med (s)", "exec min (s)", "COV", "idle (%)", "to (us)",
                      "To (s)", "tw (us)", "Tw (s)", "pending acc"});
  for (const auto& p : points) {
    table.add_row({format_number(p.grain_ns / 1e3, 2),
                   format_count(static_cast<std::int64_t>(p.num_tasks)),
                   format_count(static_cast<std::int64_t>(p.num_edges)),
                   format_number(p.m.task_duration_ns / 1e3, 2),
                   format_number(p.exec_time_s.mean(), 4),
                   format_number(p.exec_time_s.median(), 4),
                   format_number(p.exec_time_s.min(), 4),
                   format_number(p.cov, 3),
                   format_number(p.m.idle_rate * 100, 1),
                   format_number(p.m.task_overhead_ns / 1e3, 2),
                   format_number(p.m.tm_overhead_s, 4),
                   format_number(p.m.wait_per_task_ns / 1e3, 2),
                   format_number(p.m.wait_time_s, 4),
                   format_count(static_cast<std::int64_t>(p.mean.pending_accesses))});
  }
  table.print(std::cout);

  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    const std::string path =
        csv + "graph_sweep_" + graph::pattern_name(kind) + ".csv";
    if (table.save_csv(path)) std::cout << "(csv written to " << path << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  const bool full = args.has("full");
  const bool sim_mode = args.get("mode", "native") == "sim";
  const bool report = args.has("report") && !sim_mode;
  // --report needs events even when no export flag turned tracing on. Must
  // happen before the backend builds its first thread manager.
  if (report)
    perf::tracer::instance().enable(
        static_cast<std::size_t>(args.get_int("trace-buf", 0)));

  std::unique_ptr<core::graph_backend> backend;
  int cores;
  if (sim_mode) {
    const auto model = sim::make_machine_model(args.get("platform", "haswell"));
    cores = static_cast<int>(args.get_int("cores", model.spec.cores));
    backend = std::make_unique<sim::graph_sim_backend>(model);
  } else {
    cores = static_cast<int>(
        args.get_int("workers", topology::host().num_cpus()));
    // Empty default: --policy wins, then GRAN_POLICY, then the paper's
    // priority-local-fifo (resolved inside the thread manager).
    backend = std::make_unique<core::native_graph_backend>(
        resolve_policy_name(args.get("policy", "")),
        static_cast<std::size_t>(args.get_int("window", 0)));
  }

  const std::string pattern = args.get("pattern", "stencil1d");
  int rc = 0;
  if (pattern == "all") {
    for (const graph::pattern kind : graph::all_patterns)
      if ((rc = run_pattern(*backend, kind, args, full, cores)) != 0) break;
  } else {
    rc = run_pattern(*backend, graph::pattern_from_name(pattern), args, full, cores);
  }

  if (rc == 0 && report) {
    // All managers are gone (one per run, destroyed inside the backend), so
    // the rings are quiescent. The trace spans every run of the sweep —
    // baselines included — which is exactly what the U-curve question wants
    // side by side.
    obs.finish();  // flush any requested exports before analyzing
    perf::analysis_options opt;
    opt.top_n = static_cast<int>(args.get_int("top", 10));
    opt.force_wait_attribution = args.has("force-waits");
    const perf::trace_dump dump = perf::tracer::instance().dump();
    std::cout << "\n";
    perf::write_report(std::cout, perf::analyze_trace(dump, opt), opt);
  }
  return rc;
}
