// A/B micro-benchmark for the task-lifecycle tracer (src/perf/trace.hpp).
//
// Three measurements:
//   * gate:  cost of a trace_emit call while tracing is DISABLED — the price
//     every scheduler hot path pays unconditionally. Must stay ~1 branch.
//   * emit:  cost of a trace_emit call while tracing is ENABLED — timestamp,
//     slot store, release publish.
//   * end-to-end: task throughput of a real thread_manager running a
//     fine-grained spin workload, tracing off vs on.
//
//   --tasks=N          tasks per end-to-end run (default 40000)
//   --spin=N           per-task spin iterations (default 2000, ~1-2 us)
//   --workers=N        worker threads (default 4)
//   --reps=N           repetitions, best-of (default 3)
//   --emit-ops=N       emit/gate loop iterations (default 20e6)
//   --json=PATH        write machine-readable results
//   --baseline=PATH    compare against a previous --json dump; exits 1 when
//                      the disabled-path throughput regressed more than
//                      --tolerance-pct (default 1.0), or — when the baseline
//                      recorded on_tasks_per_s — the *enabled*-path
//                      throughput regressed more than --enabled-tolerance-pct
//                      (default 10.0; the enabled path is noisier and pays
//                      one extra event per spawn by design)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "perf/trace.hpp"
#include "threads/thread_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// Per-task payload: a dependency-chained multiply loop the optimizer cannot
// collapse, sized by --spin to the ~1 us grain where tracing overhead would
// show first.
volatile double g_sink = 0;
void spin_task(std::uint64_t iters) {
  double x = 1.000000119;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * 1.000000119 + 1e-9;
  g_sink = x;
}

// ns per trace_emit call in a tight loop (covers both the disabled gate and
// the enabled emit path depending on tracer state).
double emit_cost_ns(perf::trace_ring* ring, std::uint64_t ops) {
  stopwatch clock;
  for (std::uint64_t i = 0; i < ops; ++i)
    perf::trace_emit(ring, perf::trace_kind::task_begin, 0, i, 0, "bench");
  return clock.elapsed_s() * 1e9 / static_cast<double>(ops);
}

// One end-to-end run: spawn `tasks` spin tasks on a fresh manager, wait for
// the pool to drain. Returns tasks per second.
double run_throughput(int workers, std::uint64_t tasks, std::uint64_t spin) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  stopwatch clock;
  for (std::uint64_t i = 0; i < tasks; ++i)
    tm.spawn([spin] { spin_task(spin); }, task_priority::normal, "spin");
  tm.wait_idle();
  return static_cast<double>(tasks) / clock.elapsed_s();
}

double best_throughput(int reps, int workers, std::uint64_t tasks,
                       std::uint64_t spin) {
  double best = 0;
  for (int r = 0; r < reps; ++r)
    best = std::max(best, run_throughput(workers, tasks, spin));
  return best;
}

// Minimal extraction of `"key": <number>` from a results JSON; returns NaN
// when the key is absent.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto tasks = static_cast<std::uint64_t>(args.get_int("tasks", 40'000));
  const auto spin = static_cast<std::uint64_t>(args.get_int("spin", 2'000));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto emit_ops =
      static_cast<std::uint64_t>(args.get_int("emit-ops", 20'000'000));

  auto& tr = perf::tracer::instance();

  // --- gate: tracing disabled, ring pointer still live (worst legal case).
  perf::trace_ring gate_ring(1 << 16);
  tr.disable();
  const double gate_ns = emit_cost_ns(&gate_ring, emit_ops);

  // --- emit: tracing enabled, single producer into one ring.
  tr.enable(1 << 16);
  perf::trace_ring emit_ring(1 << 16);
  const double emit_ns = emit_cost_ns(&emit_ring, emit_ops);
  tr.disable();

  // --- end-to-end A/B. Off first (the measurement the regression gate
  // protects), then on.
  const double off_tps = best_throughput(reps, workers, tasks, spin);
  tr.enable(1 << 20);  // large rings: measure emit cost, not drop handling
  const double on_tps = best_throughput(reps, workers, tasks, spin);
  tr.disable();
  tr.clear();

  const double overhead_pct = (off_tps / on_tps - 1.0) * 100.0;

  std::cout << "Tracing overhead: " << workers << " workers, " << tasks
            << " tasks x " << spin << " spin iters, best of " << reps << "\n";
  table_writer table({"measurement", "value"});
  table.add_row({"gate (disabled emit)", format_number(gate_ns, 2) + " ns"});
  table.add_row({"emit (enabled)", format_number(emit_ns, 2) + " ns"});
  table.add_row({"tasks/s off", format_number(off_tps / 1e3, 1) + " k"});
  table.add_row({"tasks/s on", format_number(on_tps / 1e3, 1) + " k"});
  table.add_row({"enabled overhead", format_number(overhead_pct, 2) + " %"});
  table.print(std::cout);

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"micro_trace_overhead\",\n"
      << "  \"tasks\": " << tasks << ",\n  \"spin\": " << spin
      << ",\n  \"workers\": " << workers << ",\n"
      << "  \"gate_ns\": " << gate_ns << ",\n  \"emit_ns\": " << emit_ns
      << ",\n  \"off_tasks_per_s\": " << off_tps
      << ",\n  \"on_tasks_per_s\": " << on_tps
      << ",\n  \"overhead_pct\": " << overhead_pct << "\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }

  const std::string baseline = args.get("baseline", "");
  if (!baseline.empty()) {
    std::ifstream f(baseline);
    if (!f) {
      std::cerr << "cannot read baseline " << baseline << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double base_off = json_number(ss.str(), "off_tasks_per_s");
    if (!(base_off > 0)) {
      std::cerr << "baseline " << baseline << " has no off_tasks_per_s\n";
      return 2;
    }
    const double tolerance = args.get_double("tolerance-pct", 1.0);
    const double delta_pct = (1.0 - off_tps / base_off) * 100.0;
    std::cout << "disabled-path vs baseline: " << format_number(delta_pct, 2)
              << " % slower (tolerance " << format_number(tolerance, 1)
              << " %)\n";
    if (delta_pct > tolerance) {
      std::cerr << "FAIL: tracing-disabled throughput regressed "
                << format_number(delta_pct, 2) << " % > "
                << format_number(tolerance, 1) << " %\n";
      return 1;
    }
    std::cout << "OK: disabled-path regression within tolerance\n";

    // Enabled-path gate: only when the baseline knows on_tasks_per_s (older
    // dumps predate it -> skipped, not failed). Looser budget than the
    // disabled gate: the enabled path legitimately grows with new events
    // (task_enqueue adds one emit per spawn), the gate catches pathological
    // regressions like contention on a shared ring.
    const double base_on = json_number(ss.str(), "on_tasks_per_s");
    if (base_on > 0) {
      const double on_tolerance = args.get_double("enabled-tolerance-pct", 10.0);
      const double on_delta_pct = (1.0 - on_tps / base_on) * 100.0;
      std::cout << "enabled-path vs baseline: " << format_number(on_delta_pct, 2)
                << " % slower (tolerance " << format_number(on_tolerance, 1)
                << " %)\n";
      if (on_delta_pct > on_tolerance) {
        std::cerr << "FAIL: tracing-enabled throughput regressed "
                  << format_number(on_delta_pct, 2) << " % > "
                  << format_number(on_tolerance, 1) << " %\n";
        return 1;
      }
      std::cout << "OK: enabled-path regression within tolerance\n";
    }
  }
  return 0;
}
