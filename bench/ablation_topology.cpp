// Ablation: topology-aware scheduling on the native runtime.
//
// Two sections, both over a parameterized task graph (graph/run_graph) on
// the work-stealing policy:
//
//   1. steal order — hierarchical victim tiers (SMT sibling -> same NUMA
//      domain -> remote, rotating start per tier) vs the flat fixed
//      (w+k) % n ring, for a compute-bound (busy_spin) and a bandwidth-
//      bound (memory_stream) kernel. Reports elapsed time plus the
//      stolen-local / stolen-remote split: the hierarchical order should
//      keep memory_stream steals inside the data's domain.
//   2. pinning layout — GRAN_PIN=compact vs scatter under the hierarchical
//      order (memory_stream kernel).
//
// On a single-NUMA host every victim is "local", so the two orders differ
// only in herd avoidance and the remote column reads 0; pass --domains=N to
// impose a synthetic domain split (the same override the simulator
// ablations use) and exercise the remote accounting.
//
//   $ ./ablation_topology                  # full grid
//   $ ./ablation_topology --quick          # CI smoke (seconds)
//   $ ./ablation_topology --domains=2 --json=results/ablation_topology.json
//
//   --pattern=NAME   graph pattern (default spread)   --width / --steps
//   --grain-ns=F     target task duration (default 20000)
//   --samples=N      repetitions per cell, median reported (default 5)
//   --workers=N      worker threads (default: all CPUs)
//   --domains=N      override NUMA domain count (default 0 = host)
//   --window=N       construction window, rows (default 8)
//   --json=PATH      machine-readable results
//
// Observability flags (--trace-out, --sample-interval-us, ...) are honored;
// see docs/TRACING.md.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/executor.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/observability.hpp"
#include "threads/thread_manager.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

struct cell {
  std::string section;     // "steal-order" | "pin"
  std::string kernel;
  std::string variant;     // hier/flat or compact/scatter
  double elapsed_med_s = 0.0;
  std::uint64_t stolen = 0;
  std::uint64_t stolen_local = 0;
  std::uint64_t stolen_remote = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0 : (n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

cell run_cell(const graph::graph_spec& g, const graph::kernel_spec& k,
              scheduler_config cfg, int samples, std::size_t window) {
  thread_manager tm(cfg);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s)
    times.push_back(graph::run_graph(tm, g, k, window).elapsed_s);

  const auto tot = tm.counter_totals();
  cell c;
  c.elapsed_med_s = median(std::move(times));
  c.stolen = tot.tasks_stolen;
  c.stolen_remote = tot.tasks_stolen_remote;
  c.stolen_local = tot.tasks_stolen - std::min(tot.tasks_stolen, tot.tasks_stolen_remote);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  const bool quick = args.has("quick");

  graph::graph_spec g;
  g.kind = graph::pattern_from_name(args.get("pattern", "spread"));
  g.width = static_cast<std::uint32_t>(args.get_int("width", quick ? 64 : 256));
  g.steps = static_cast<std::uint32_t>(args.get_int("steps", quick ? 8 : 20));
  g.radius = static_cast<std::uint32_t>(args.get_int("radius", 2));
  if (const std::string err = g.validate(); !err.empty()) {
    std::cerr << "invalid graph spec: " << err << "\n";
    return 1;
  }

  const double grain_ns = args.get_double("grain-ns", quick ? 5'000.0 : 20'000.0);
  const int samples = static_cast<int>(args.get_int("samples", quick ? 2 : 5));
  const auto window = static_cast<std::size_t>(args.get_int("window", 8));

  scheduler_config base;
  base.num_workers = static_cast<int>(args.get_int("workers", 0));
  base.numa_domains = static_cast<int>(args.get_int("domains", 0));
  base.policy = "work-stealing-lifo";

  std::cout << "Ablation: topology-aware scheduling (" << g.describe() << ", "
            << g.total_tasks() << " tasks, grain " << grain_ns << " ns, "
            << samples << " samples per cell)\n";

  std::vector<cell> cells;

  // --- 1. hierarchical vs flat steal order -------------------------------
  for (const char* kernel : {"busy_spin", "memory_stream"}) {
    graph::kernel_spec k;
    k.kind = graph::kernel_from_name(kernel);
    k.grain_ns = grain_ns;
    for (const char* order : {"flat", "hier"}) {
      scheduler_config cfg = base;
      cfg.steal_order = order;
      cell c = run_cell(g, k, cfg, samples, window);
      c.section = "steal-order";
      c.kernel = kernel;
      c.variant = order;
      cells.push_back(c);
    }
  }

  table_writer steal_table({"kernel", "order", "exec med (s)", "stolen",
                            "stolen local", "stolen remote"});
  for (const auto& c : cells)
    steal_table.add_row({c.kernel, c.variant, format_number(c.elapsed_med_s, 4),
                         format_count(static_cast<std::int64_t>(c.stolen)),
                         format_count(static_cast<std::int64_t>(c.stolen_local)),
                         format_count(static_cast<std::int64_t>(c.stolen_remote))});
  std::cout << "\nSteal order: hierarchical vs flat ring\n";
  steal_table.print(std::cout);

  // --- 2. compact vs scatter pinning -------------------------------------
  {
    graph::kernel_spec k;
    k.kind = graph::kernel_kind::memory_stream;
    k.grain_ns = grain_ns;
    table_writer pin_table({"pin", "exec med (s)", "stolen", "stolen remote"});
    for (const char* pin : {"compact", "scatter"}) {
      scheduler_config cfg = base;
      cfg.steal_order = "hier";
      cfg.pin = pin;
      cell c = run_cell(g, k, cfg, samples, window);
      c.section = "pin";
      c.kernel = "memory_stream";
      c.variant = pin;
      cells.push_back(c);
      pin_table.add_row({pin, format_number(c.elapsed_med_s, 4),
                         format_count(static_cast<std::int64_t>(c.stolen)),
                         format_count(static_cast<std::int64_t>(c.stolen_remote))});
    }
    std::cout << "\nPinning layout (hier order, memory_stream)\n";
    pin_table.print(std::cout);
  }

  // Headline for the acceptance gate: hier vs flat on the bandwidth-bound
  // kernel (where victim locality is supposed to pay).
  double flat_ms = 0, hier_ms = 0;
  for (const auto& c : cells) {
    if (c.section != "steal-order" || c.kernel != "memory_stream") continue;
    (c.variant == "hier" ? hier_ms : flat_ms) = c.elapsed_med_s;
  }
  if (flat_ms > 0 && hier_ms > 0)
    std::cout << "\nmemory_stream speedup (flat / hier): "
              << format_number(flat_ms / hier_ms, 3) << "x\n";

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"ablation_topology\",\n  \"pattern\": \""
      << graph::pattern_name(g.kind) << "\",\n  \"grain_ns\": " << grain_ns
      << ",\n  \"samples\": " << samples << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      f << "    {\"section\": \"" << c.section << "\", \"kernel\": \"" << c.kernel
        << "\", \"variant\": \"" << c.variant
        << "\", \"elapsed_med_s\": " << c.elapsed_med_s
        << ", \"stolen\": " << c.stolen << ", \"stolen_local\": " << c.stolen_local
        << ", \"stolen_remote\": " << c.stolen_remote << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }
  return 0;
}
