// Micro-benchmarks of the runtime's primitive costs (google-benchmark).
//
// These are the native equivalents of the simulator's machine-model
// constants — context-switch, task spawn/run, future round trip, queue
// operations — plus the timer-invocation overhead the paper's §II note
// measures ("no significant overheads except ... task durations less than
// four microseconds").
#include <benchmark/benchmark.h>

#include <atomic>

#include "async/gran.hpp"
#include "fiber/fiber.hpp"
#include "perf/observability.hpp"
#include "util/cli.hpp"
#include "queues/concurrent_fifo.hpp"
#include "queues/mpmc_bounded.hpp"
#include "queues/spsc_ring.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// One manager shared by the task benchmarks (built lazily so queue/fiber
// benches don't pay for it).
thread_manager& bench_manager() {
  static scheduler_config cfg = [] {
    scheduler_config c;
    c.num_workers = 2;
    c.pin_workers = false;
    return c;
  }();
  static thread_manager tm(cfg);
  return tm;
}

void bm_timer_rdtsc(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(tsc_clock::now());
}
BENCHMARK(bm_timer_rdtsc);

void bm_timer_steady_clock(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(std::chrono::steady_clock::now());
}
BENCHMARK(bm_timer_steady_clock);

void bm_context_switch_pair(benchmark::State& state) {
  // One resume+suspend round trip = two raw context switches.
  stack_pool pool;
  fiber f(pool.acquire(), [] {
    for (;;) fiber::current()->suspend();
  });
  for (auto _ : state) f.resume();
  state.SetItemsProcessed(state.iterations());
  // The fiber never finishes; its stack dies with it (benchmark-only).
}
BENCHMARK(bm_context_switch_pair);

void bm_spsc_ring_push_pop(benchmark::State& state) {
  spsc_ring<std::uint64_t> ring(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.push(i++);
    benchmark::DoNotOptimize(ring.pop());
  }
}
BENCHMARK(bm_spsc_ring_push_pop);

void bm_mpmc_bounded_push_pop(benchmark::State& state) {
  mpmc_bounded<std::uint64_t> q(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    q.push(i++);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(bm_mpmc_bounded_push_pop);

void bm_concurrent_fifo_push_pop(benchmark::State& state) {
  concurrent_fifo<std::uint64_t> q(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    q.push(i++);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(bm_concurrent_fifo_push_pop);

void bm_task_spawn_and_complete(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  for (auto _ : state) {
    latch done(1);
    tm.spawn([&done] { done.count_down(); });
    done.wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_task_spawn_and_complete);

void bm_task_spawn_batch(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    latch done(batch);
    for (int i = 0; i < batch; ++i) tm.spawn([&done] { done.count_down(); });
    done.wait();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(bm_task_spawn_batch)->Arg(64)->Arg(1024);

void bm_future_round_trip(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  (void)tm;
  for (auto _ : state) {
    auto f = async([] { return 42; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_future_round_trip);

void bm_dataflow_node(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  (void)tm;
  for (auto _ : state) {
    auto a = make_ready_future<int>(1);
    auto b = make_ready_future<int>(2);
    auto c = dataflow([](future<int>& x, future<int>& y) { return x.get() + y.get(); },
                      a, b);
    benchmark::DoNotOptimize(c.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_dataflow_node);

void bm_counter_query(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  (void)tm;
  auto& reg = perf::registry::instance();
  for (auto _ : state) benchmark::DoNotOptimize(reg.query("/threads/idle-rate"));
}
BENCHMARK(bm_counter_query);

// The §II note reproduced: per-task timestamping cost relative to task
// duration. Runs a task of `points` synthetic grid-point updates and
// reports ns/task — compare the per-task fixed cost across sizes.
void bm_task_with_work(benchmark::State& state) {
  thread_manager& tm = bench_manager();
  const std::int64_t points = state.range(0);
  std::vector<double> data(static_cast<std::size_t>(points) + 2, 1.0);
  for (auto _ : state) {
    latch done(1);
    tm.spawn([&done, &data, points] {
      double acc = 0;
      for (std::int64_t i = 1; i <= points; ++i)
        acc += 0.5 * (data[static_cast<std::size_t>(i - 1)] -
                      2 * data[static_cast<std::size_t>(i)] +
                      data[static_cast<std::size_t>(i + 1)]);
      benchmark::DoNotOptimize(acc);
      done.count_down();
    });
    done.wait();
  }
  state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(bm_task_with_work)->Arg(160)->Arg(2500)->Arg(12500)->Arg(100000);

}  // namespace

// Expanded BENCHMARK_MAIN so an observability_session wraps the runs. The
// gran flags (--trace-out, --sample-interval-us, ...) are parsed from the
// original argv before benchmark::Initialize consumes its own; unrecognized
// leftovers are tolerated on both sides.
int main(int argc, char** argv) {
  const gran::cli_args args(argc, argv);
  gran::perf::observability_session obs(
      gran::perf::observability_session::options_from_cli(
          args, gran::perf::observability_session::options_from_env()));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
