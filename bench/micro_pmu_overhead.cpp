// A/B micro-benchmark for the PMU plane (src/perf/pmu.hpp).
//
// Three measurements:
//   * gate: task throughput of a thread_manager with the plane OFF — the
//     price every run pays unconditionally (one null-pointer branch per
//     phase). This is the measurement the <=1% regression gate protects.
//   * software: plane forced to the rdtsc/rusage rung — the fallback every
//     locked-down container lands on.
//   * hardware: plane probing the real PMU (degrades per the ladder; the
//     mode column in the output says what actually got counted).
//
//   --tasks=N          tasks per end-to-end run (default 40000)
//   --spin=N           per-task spin iterations (default 2000, ~1-2 us)
//   --workers=N        worker threads (default 4)
//   --reps=N           repetitions, best-of (default 3)
//   --json=PATH        write machine-readable results
//   --baseline=PATH    compare against a previous --json dump; exits 1 when
//                      the PMU-off throughput regressed more than
//                      --tolerance-pct (default 1.0), or — when the baseline
//                      recorded sw_tasks_per_s — the software-rung
//                      throughput regressed more than
//                      --enabled-tolerance-pct (default 10.0; two counter
//                      samples per phase are real work by design)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "perf/pmu.hpp"
#include "threads/thread_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// Per-task payload: a dependency-chained multiply loop the optimizer cannot
// collapse, sized by --spin to the ~1 us grain where per-phase sampling
// overhead would show first.
volatile double g_sink = 0;
void spin_task(std::uint64_t iters) {
  double x = 1.000000119;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * 1.000000119 + 1e-9;
  g_sink = x;
}

// One end-to-end run: spawn `tasks` spin tasks on a fresh manager, wait for
// the pool to drain. Returns tasks per second. The manager is built after
// the plane is configured, so workers pick up (or skip) readers at start.
double run_throughput(int workers, std::uint64_t tasks, std::uint64_t spin) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  stopwatch clock;
  for (std::uint64_t i = 0; i < tasks; ++i)
    tm.spawn([spin] { spin_task(spin); }, task_priority::normal, "spin");
  tm.wait_idle();
  return static_cast<double>(tasks) / clock.elapsed_s();
}

double best_throughput(int reps, int workers, std::uint64_t tasks,
                       std::uint64_t spin) {
  double best = 0;
  for (int r = 0; r < reps; ++r)
    best = std::max(best, run_throughput(workers, tasks, spin));
  return best;
}

// Minimal extraction of `"key": <number>` from a results JSON; returns NaN
// when the key is absent.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto tasks = static_cast<std::uint64_t>(args.get_int("tasks", 40'000));
  const auto spin = static_cast<std::uint64_t>(args.get_int("spin", 2'000));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  auto& plane = perf::pmu_plane::instance();

  // --- gate: plane off (the default; the regression target).
  plane.reset_for_test();
  plane.configure("off");
  const double off_tps = best_throughput(reps, workers, tasks, spin);

  // --- software rung: rdtsc + rusage, no perf fds at all.
  plane.reset_for_test();
  plane.configure("software");
  const double sw_tps = best_throughput(reps, workers, tasks, spin);

  // --- hardware probe: whatever rung this kernel/container grants.
  plane.reset_for_test();
  plane.configure("1");
  const double hw_tps = best_throughput(reps, workers, tasks, spin);
  const perf::pmu_mode hw_mode = plane.mode();
  plane.reset_for_test();

  const double sw_overhead_pct = (off_tps / sw_tps - 1.0) * 100.0;
  const double hw_overhead_pct = (off_tps / hw_tps - 1.0) * 100.0;

  std::cout << "PMU plane overhead: " << workers << " workers, " << tasks
            << " tasks x " << spin << " spin iters, best of " << reps << "\n";
  table_writer table({"measurement", "value"});
  table.add_row({"tasks/s off", format_number(off_tps / 1e3, 1) + " k"});
  table.add_row({"tasks/s software", format_number(sw_tps / 1e3, 1) + " k"});
  table.add_row({"software overhead", format_number(sw_overhead_pct, 2) + " %"});
  table.add_row({"tasks/s hardware (" + std::string(perf::pmu_mode_name(hw_mode)) + ")",
                 format_number(hw_tps / 1e3, 1) + " k"});
  table.add_row({"hardware overhead", format_number(hw_overhead_pct, 2) + " %"});
  table.print(std::cout);

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"micro_pmu_overhead\",\n"
      << "  \"tasks\": " << tasks << ",\n  \"spin\": " << spin
      << ",\n  \"workers\": " << workers << ",\n"
      << "  \"hw_mode\": \"" << perf::pmu_mode_name(hw_mode) << "\",\n"
      << "  \"off_tasks_per_s\": " << off_tps
      << ",\n  \"sw_tasks_per_s\": " << sw_tps
      << ",\n  \"hw_tasks_per_s\": " << hw_tps
      << ",\n  \"sw_overhead_pct\": " << sw_overhead_pct
      << ",\n  \"hw_overhead_pct\": " << hw_overhead_pct << "\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }

  const std::string baseline = args.get("baseline", "");
  if (!baseline.empty()) {
    std::ifstream f(baseline);
    if (!f) {
      std::cerr << "cannot read baseline " << baseline << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double base_off = json_number(ss.str(), "off_tasks_per_s");
    if (!(base_off > 0)) {
      std::cerr << "baseline " << baseline << " has no off_tasks_per_s\n";
      return 2;
    }
    const double tolerance = args.get_double("tolerance-pct", 1.0);
    const double delta_pct = (1.0 - off_tps / base_off) * 100.0;
    std::cout << "pmu-off path vs baseline: " << format_number(delta_pct, 2)
              << " % slower (tolerance " << format_number(tolerance, 1)
              << " %)\n";
    if (delta_pct > tolerance) {
      std::cerr << "FAIL: pmu-disabled throughput regressed "
                << format_number(delta_pct, 2) << " % > "
                << format_number(tolerance, 1) << " %\n";
      return 1;
    }
    std::cout << "OK: pmu-off regression within tolerance\n";

    // Software-rung gate: only when the baseline knows sw_tasks_per_s.
    // Looser budget: two pmu samples per phase are real, intended work.
    const double base_sw = json_number(ss.str(), "sw_tasks_per_s");
    if (base_sw > 0) {
      const double sw_tolerance = args.get_double("enabled-tolerance-pct", 10.0);
      const double sw_delta_pct = (1.0 - sw_tps / base_sw) * 100.0;
      std::cout << "software rung vs baseline: "
                << format_number(sw_delta_pct, 2) << " % slower (tolerance "
                << format_number(sw_tolerance, 1) << " %)\n";
      if (sw_delta_pct > sw_tolerance) {
        std::cerr << "FAIL: software-rung throughput regressed "
                  << format_number(sw_delta_pct, 2) << " % > "
                  << format_number(sw_tolerance, 1) << " %\n";
        return 1;
      }
      std::cout << "OK: software-rung regression within tolerance\n";
    }
  }
  return 0;
}
