// Open-loop load generator for the task-service ingress (src/service/) —
// the "millions of users" harness: client threads replay a deterministic
// arrival process (Poisson or bursty MMPP, service/arrival.hpp) against a
// live thread_manager + task_service, or the same stream through the
// discrete-event mirror (sim/service_sim.hpp), and report the service-level
// view: sustained throughput, achieved vs. offered load, rejection rate,
// and sojourn percentiles per (arrival-rate × grain × policy) cell.
//
// Open-loop matters: clients submit on the arrival clock whether or not the
// system keeps up, so saturation shows as growing sojourn/rejections rather
// than silently slowing the generator (closed-loop coordinated omission).
//
//   --mode=native|sim|both  execution target (default native)
//   --duration=S            arrival horizon, seconds (default 2)
//   --rate=R                mean arrivals/s (default 20000)
//   --arrival=poisson|mmpp  arrival process (default poisson)
//   --burst-factor=X --burst-fraction=F --burst-dwell-ms=D   MMPP shape
//   --grain=NS              fixed per-request demand, ns (default 20000)
//   --grain-min=NS --grain-max=NS   log-uniform grain mix instead
//   --clients=N             submitting client threads (default 2)
//   --policy=block|reject|shed-oldest   admission policy (default block)
//   --backlog=N             admission bound (default 4096)
//   --shards=N              ingress shards (default: one per worker)
//   --workers=N             native worker threads (default 4)
//   --cores=N               sim cores (default: --workers)
//   --platform=NAME         sim machine model (default haswell)
//   --seed=N                arrival-stream seed (default 1)
//   --sweep-grain=A,B,...   U-curve: run one cell per grain at fixed offered
//                           load --util=F (rate = F × workers / grain)
//   --json=PATH             machine-readable dump of the last native cell
//   --baseline=PATH         gate against a previous --json dump:
//                           achieved/s must not regress more than
//                           --tolerance-pct (default 10), p99 sojourn must
//                           stay under baseline × --p99-tolerance-x
//                           (default 3)
//
// Plus the standard observability flags (--metrics-out, --metrics-prom,
// ...): a service run streams the new interval.service section, which
// gran_top renders and --check validates.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/observability.hpp"
#include "service/arrival.hpp"
#include "service/service.hpp"
#include "sim/service_sim.hpp"
#include "threads/thread_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

struct cell_config {
  bool native = true;
  service::arrival_config arrival;
  double duration_s = 2.0;
  service::admission_policy policy = service::admission_policy::block;
  std::int64_t backlog_bound = 4096;
  int shards = 0;
  int clients = 2;
  int workers = 4;        // native
  int cores = 4;          // sim
  std::string platform = "haswell";
};

struct cell_result {
  std::uint64_t generated = 0, submitted = 0, accepted = 0, rejected = 0,
                shed = 0, completed = 0;
  std::int64_t backlog_peak = 0;
  double wall_s = 0;
  double offered_per_s = 0, achieved_per_s = 0;
  double rejection_rate = 0;
  double p50_ns = 0, p95_ns = 0, p99_ns = 0, mean_ns = 0;
};

// Burns ~ns of CPU (TSC-paced), the request body of every native cell.
void spin_for_ns(std::uint64_t ns) {
  const std::uint64_t start = tsc_clock::now();
  const auto target = static_cast<std::uint64_t>(
      static_cast<double>(ns) / tsc_clock::ns_per_tick());
  while (tsc_clock::now() - start < target) {
  }
}

// Sleeps coarsely, spins the last stretch: open-loop pacing accurate to a
// few microseconds without burning a core per client for the whole run.
void pace_until(std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto gap = deadline - now;
    if (gap > std::chrono::microseconds(300))
      std::this_thread::sleep_for(gap - std::chrono::microseconds(200));
    else if (gap > std::chrono::microseconds(50))
      std::this_thread::yield();
    // else: spin
  }
}

cell_result run_native_cell(const cell_config& cfg) {
  const std::vector<service::arrival_event> arrivals =
      service::generate_arrivals(cfg.arrival, cfg.duration_s);

  scheduler_config scfg;
  scfg.num_workers = cfg.workers;
  scfg.pin_workers = false;
  thread_manager tm(scfg);

  service::service_config svc_cfg;
  svc_cfg.policy = cfg.policy;
  svc_cfg.backlog_bound = cfg.backlog_bound;
  svc_cfg.shards = cfg.shards;
  svc_cfg = service::service_config::from_env(svc_cfg);
  service::task_service svc(tm, svc_cfg);

  stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < arrivals.size();
           i += static_cast<std::size_t>(cfg.clients)) {
        const service::arrival_event& ev = arrivals[i];
        pace_until(start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(ev.t_s)));
        const std::uint64_t grain = ev.grain_ns;
        (void)svc.submit([grain] { spin_for_ns(grain); });
      }
    });
  }
  for (auto& t : clients) t.join();
  svc.quiesce();

  cell_result r;
  r.wall_s = wall.elapsed_s();
  const service::task_service::stats s = svc.snapshot();
  const perf::histogram_snapshot h = svc.sojourn_snapshot();
  r.generated = arrivals.size();
  r.submitted = s.submitted;
  r.accepted = s.accepted;
  r.rejected = s.rejected;
  r.shed = s.shed;
  r.completed = s.completed;
  r.backlog_peak = s.backlog_peak;
  r.offered_per_s = cfg.duration_s > 0
                        ? static_cast<double>(r.generated) / cfg.duration_s
                        : 0;
  r.achieved_per_s = r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s : 0;
  r.rejection_rate =
      s.submitted > 0 ? static_cast<double>(s.rejected) / static_cast<double>(s.submitted)
                      : 0;
  r.p50_ns = h.percentile(50);
  r.p95_ns = h.percentile(95);
  r.p99_ns = h.percentile(99);
  r.mean_ns = h.mean();
  return r;
}

cell_result run_sim_cell(const cell_config& cfg) {
  sim::service_sim_config sc;
  sc.model = sim::make_machine_model(cfg.platform);
  sc.cores = cfg.cores;
  sc.arrival = cfg.arrival;
  sc.duration_s = cfg.duration_s;
  sc.policy = cfg.policy;
  sc.backlog_bound = cfg.backlog_bound;
  const sim::service_sim_result res = sim::run_service_sim(sc);

  cell_result r;
  r.generated = res.generated;
  r.submitted = res.generated;
  r.accepted = res.accepted;
  r.rejected = res.rejected;
  r.shed = res.shed;
  r.completed = res.completed;
  r.backlog_peak = res.backlog_peak;
  r.wall_s = res.makespan_s;
  r.offered_per_s = res.offered_per_s;
  r.achieved_per_s = res.achieved_per_s;
  r.rejection_rate =
      res.generated > 0
          ? static_cast<double>(res.rejected) / static_cast<double>(res.generated)
          : 0;
  r.p50_ns = res.sojourn_p50_ns;
  r.p95_ns = res.sojourn_p95_ns;
  r.p99_ns = res.sojourn_p99_ns;
  r.mean_ns = res.sojourn_mean_ns;
  return r;
}

void print_cell(const char* mode, const cell_config& cfg, const cell_result& r) {
  std::ostringstream grain;
  if (cfg.arrival.grain_max_ns > cfg.arrival.grain_min_ns)
    grain << format_duration_ns(cfg.arrival.grain_min_ns) << ".."
          << format_duration_ns(cfg.arrival.grain_max_ns);
  else
    grain << format_duration_ns(cfg.arrival.grain_min_ns);
  std::cout << "[" << mode << "] " << service::to_string(cfg.arrival.kind)
            << " rate=" << format_number(cfg.arrival.rate_per_s, 0)
            << "/s grain=" << grain.str()
            << " policy=" << service::to_string(cfg.policy)
            << ": offered=" << format_number(r.offered_per_s, 0)
            << "/s achieved=" << format_number(r.achieved_per_s, 0)
            << "/s rej=" << format_number(r.rejection_rate * 100.0, 2)
            << "% shed=" << r.shed << " backlog_peak=" << r.backlog_peak
            << " sojourn p50/p95/p99 = " << format_duration_ns(r.p50_ns) << "/"
            << format_duration_ns(r.p95_ns) << "/" << format_duration_ns(r.p99_ns)
            << "\n";
}

double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  cell_config cfg;
  cfg.duration_s = args.get_double("duration", 2.0);
  cfg.arrival.rate_per_s = args.get_double("rate", 20'000);
  cfg.arrival.kind = args.get("arrival", "poisson") == "mmpp"
                         ? service::arrival_kind::mmpp
                         : service::arrival_kind::poisson;
  cfg.arrival.burst_factor = args.get_double("burst-factor", 8.0);
  cfg.arrival.burst_fraction = args.get_double("burst-fraction", 0.1);
  cfg.arrival.burst_dwell_s = args.get_double("burst-dwell-ms", 10.0) * 1e-3;
  const double grain = args.get_double("grain", 20'000);
  cfg.arrival.grain_min_ns = args.get_double("grain-min", grain);
  cfg.arrival.grain_max_ns = args.get_double("grain-max", cfg.arrival.grain_min_ns);
  cfg.arrival.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.policy = service::policy_from_string(args.get("policy", "block"));
  cfg.backlog_bound = args.get_int("backlog", 4096);
  cfg.shards = static_cast<int>(args.get_int("shards", 0));
  cfg.clients = static_cast<int>(args.get_int("clients", 2));
  cfg.workers = static_cast<int>(args.get_int("workers", 4));
  cfg.cores = static_cast<int>(args.get_int("cores", cfg.workers));
  cfg.platform = args.get("platform", "haswell");

  const std::string mode = args.get("mode", "native");
  const bool run_native = mode == "native" || mode == "both";
  const bool run_sim = mode == "sim" || mode == "both";
  if (!run_native && !run_sim) {
    std::cerr << "service_load: unknown --mode=" << mode
              << " (native|sim|both)\n";
    return 2;
  }

  cell_result last_native{};
  bool have_native = false;

  const std::vector<std::int64_t> sweep = args.get_int_list("sweep-grain", {});
  if (!sweep.empty()) {
    // U-curve: sojourn vs. grain at fixed offered load. util is the offered
    // fraction of ideal capacity: rate × grain = util × executors.
    const double util = args.get_double("util", 0.5);
    std::cout << "service_load grain sweep: util=" << format_number(util, 2)
              << " duration=" << format_number(cfg.duration_s, 1) << "s policy="
              << service::to_string(cfg.policy) << "\n";
    for (const std::int64_t g : sweep) {
      cell_config c = cfg;
      c.arrival.grain_min_ns = static_cast<double>(g);
      c.arrival.grain_max_ns = static_cast<double>(g);
      if (run_native) {
        c.arrival.rate_per_s =
            util * static_cast<double>(cfg.workers) * 1e9 / static_cast<double>(g);
        const cell_result r = run_native_cell(c);
        print_cell("native", c, r);
        last_native = r;
        have_native = true;
      }
      if (run_sim) {
        c.arrival.rate_per_s =
            util * static_cast<double>(cfg.cores) * 1e9 / static_cast<double>(g);
        print_cell("sim", c, run_sim_cell(c));
      }
    }
  } else {
    if (run_native) {
      last_native = run_native_cell(cfg);
      print_cell("native", cfg, last_native);
      have_native = true;
    }
    if (run_sim) print_cell("sim", cfg, run_sim_cell(cfg));
  }

  int rc = 0;
  const std::string json = args.get("json", "");
  if (!json.empty() && have_native) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"service_load\",\n"
      << "  \"rate_per_s\": " << cfg.arrival.rate_per_s
      << ",\n  \"grain_ns\": " << cfg.arrival.grain_min_ns
      << ",\n  \"duration_s\": " << cfg.duration_s
      << ",\n  \"workers\": " << cfg.workers
      << ",\n  \"clients\": " << cfg.clients
      << ",\n  \"policy\": \"" << service::to_string(cfg.policy)
      << "\",\n  \"offered_per_s\": " << last_native.offered_per_s
      << ",\n  \"achieved_per_s\": " << last_native.achieved_per_s
      << ",\n  \"rejection_rate\": " << last_native.rejection_rate
      << ",\n  \"backlog_peak\": " << last_native.backlog_peak
      << ",\n  \"p50_sojourn_ns\": " << last_native.p50_ns
      << ",\n  \"p99_sojourn_ns\": " << last_native.p99_ns << "\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }

  const std::string baseline = args.get("baseline", "");
  if (!baseline.empty() && have_native) {
    std::ifstream f(baseline);
    if (!f) {
      std::cerr << "cannot read baseline " << baseline << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double base_tps = json_number(ss.str(), "achieved_per_s");
    const double base_p99 = json_number(ss.str(), "p99_sojourn_ns");
    if (!(base_tps > 0)) {
      std::cerr << "baseline " << baseline << " has no achieved_per_s\n";
      return 2;
    }
    const double tolerance = args.get_double("tolerance-pct", 10.0);
    const double delta_pct = (1.0 - last_native.achieved_per_s / base_tps) * 100.0;
    std::cout << "achieved/s vs baseline: " << format_number(delta_pct, 2)
              << " % lower (tolerance " << format_number(tolerance, 1) << " %)\n";
    if (delta_pct > tolerance) {
      std::cerr << "FAIL: sustained throughput regressed "
                << format_number(delta_pct, 2) << " % > "
                << format_number(tolerance, 1) << " %\n";
      rc = 1;
    }
    // p99 sojourn gate: generous multiplier — log2-bucket resolution plus
    // shared-runner noise make tight latency gates flaky, but a broken
    // ingress path blows p99 up by orders of magnitude, not 3x.
    const double p99_x = args.get_double("p99-tolerance-x", 3.0);
    if (base_p99 > 0) {
      std::cout << "p99 sojourn vs baseline: "
                << format_number(last_native.p99_ns / base_p99, 2) << "x (limit "
                << format_number(p99_x, 1) << "x)\n";
      if (last_native.p99_ns > base_p99 * p99_x) {
        std::cerr << "FAIL: p99 sojourn " << format_duration_ns(last_native.p99_ns)
                  << " > " << format_number(p99_x, 1) << "x baseline "
                  << format_duration_ns(base_p99) << "\n";
        rc = 1;
      }
    }
    if (rc == 0) std::cout << "OK: within baseline tolerances\n";
  }
  return rc;
}
