// The paper's "micro benchmarks" (§I-C: "We obtained similar results from
// micro benchmarks but for brevity they are not included"): a homogeneous
// task-size sweep with a fixed total amount of busy work.
//
// The task size sweeps from sub-microsecond to multi-millisecond while the
// total work stays constant, so the task count shrinks as the grain grows —
// the same U-shape and idle-rate behaviour as the stencil emerges, and
// --workload selects the dependence structure it emerges under:
//
//   --workload=NAME  a graph pattern (trivial|serial_chain|stencil1d|fft|
//                    binary_tree|nearest|spread|random; default stencil1d),
//                    executed through the shared graph executor in both
//                    modes; or `independent` for the legacy raw-spawn loop
//                    (native) / sim_workload::independent (sim) — tasks with
//                    no graph at all, not even dataflow nodes.
//   --total-us=N     total busy work in microseconds (default 2e5 = 0.2 s)
//   --steps=N        graph steps for pattern workloads (default 10)
//   --workers=N      worker threads (default: all CPUs)
//   --samples=N
//   --mode=sim       run on a modeled platform instead
//                    (--platform=haswell, --cores: platform's cores)
#include <atomic>
#include <iostream>
#include <memory>

#include "core/experiment.hpp"
#include "core/graph_experiment.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "perf/observability.hpp"
#include "sim/graph_sim.hpp"
#include "sim/sim_backend.hpp"
#include "sync/latch.hpp"
#include "threads/thread_manager.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

constexpr double k_task_sizes_us[] = {0.5,   2.0,    8.0,     32.0,    128.0,
                                      512.0, 2'048.0, 8'192.0, 32'768.0};

// Busy-spins for roughly `ns` nanoseconds (calibrated once).
struct spinner {
  double iters_per_ns;

  spinner() {
    // Calibrate the work loop.
    const std::uint64_t t0 = tsc_clock::now();
    volatile double acc = 1.0;
    constexpr long probe = 2'000'000;
    for (long i = 0; i < probe; ++i) acc = acc * 1.0000001 + 0.1;
    const double ns = static_cast<double>(tsc_clock::to_ns(tsc_clock::now() - t0));
    iters_per_ns = probe / ns;
  }

  void spin(double ns) const {
    const long iters = static_cast<long>(ns * iters_per_ns);
    volatile double acc = 1.0;
    for (long i = 0; i < iters; ++i) acc = acc * 1.0000001 + 0.1;
  }
};

// Simulator variant of the legacy independent workload: the same task-size
// sweep as dependency-free tasks on a modeled platform.
int run_sim_independent(const cli_args& args) {
  const std::string platform = args.get("platform", "haswell");
  const int cores = static_cast<int>(args.get_int("cores", 28));
  sim::sim_backend backend(platform);
  backend.set_workload(sim::sim_workload::independent);

  std::cout << "Micro grain sweep (sim, " << platform << ", " << cores
            << " cores): independent tasks, no dependency graph\n";
  table_writer table(
      {"partition", "tasks", "exec time (s)", "idle-rate (%)", "pending acc (k)"});
  stencil::params base;
  base.total_points = static_cast<std::size_t>(args.get_int("points", 10'000'000));
  base.time_steps = static_cast<std::size_t>(args.get_int("steps", 10));
  for (const std::size_t ps :
       core::granularity_sweep(160, base.total_points, 3)) {
    stencil::params p = base;
    p.partition_size = ps;
    p.normalize();
    const auto m = backend.run(p, cores);
    const double idle =
        m.func_ns > 0 ? std::max(0.0, m.func_ns - m.exec_ns) / m.func_ns : 0;
    table.add_row({format_count(static_cast<std::int64_t>(p.partition_size)),
                   format_count(static_cast<std::int64_t>(m.tasks)),
                   format_number(m.exec_time_s, 4), format_number(idle * 100, 1),
                   format_number(static_cast<double>(m.pending_accesses) / 1e3, 1)});
  }
  table.print(std::cout);
  return 0;
}

// Legacy native independent workload: raw spawns, not even dataflow nodes.
int run_native_independent(const cli_args& args) {
  const double total_us = args.get_double("total-us", 200'000.0);
  const int workers = static_cast<int>(args.get_int("workers", 0));
  const int samples = static_cast<int>(args.get_int("samples", 3));

  const spinner work;
  std::cout << "Micro grain sweep: " << total_us / 1e3
            << " ms of busy work split into ever-coarser tasks (native runtime, "
               "independent spawns)\n";

  table_writer table({"task size (us)", "tasks", "exec time (s)", "COV", "idle-rate (%)",
                      "measured td (us)", "to (us)"});

  for (const double task_us : k_task_sizes_us) {
    const auto n = static_cast<std::size_t>(total_us / task_us);
    if (n == 0) break;

    sample_stats times;
    double idle_sum = 0, td_sum = 0, to_sum = 0;
    for (int s = 0; s < samples; ++s) {
      scheduler_config cfg;
      cfg.num_workers = workers;
      cfg.pin_workers = topology::host().num_cpus() >= workers;
      thread_manager tm(cfg);
      tm.reset_counters();

      stopwatch clock;
      latch done(static_cast<std::int64_t>(n));
      for (std::size_t i = 0; i < n; ++i)
        tm.spawn([&work, &done, task_us] {
          work.spin(task_us * 1e3);
          done.count_down();
        });
      done.wait();
      times.add(clock.elapsed_s());

      const auto t = tm.counter_totals();
      const double exec = static_cast<double>(t.exec_ns);
      const double func = static_cast<double>(t.func_ns);
      idle_sum += func > 0 ? std::max(0.0, func - exec) / func : 0;
      td_sum += t.tasks_executed ? exec / static_cast<double>(t.tasks_executed) : 0;
      to_sum += t.tasks_executed
                    ? std::max(0.0, func - exec) / static_cast<double>(t.tasks_executed)
                    : 0;
    }
    table.add_row({format_number(task_us, 1),
                   format_count(static_cast<std::int64_t>(n)),
                   format_number(times.mean(), 4), format_number(times.cov(), 3),
                   format_number(idle_sum / samples * 100, 1),
                   format_number(td_sum / samples / 1e3, 2),
                   format_number(to_sum / samples / 1e3, 2)});
  }
  table.print(std::cout);
  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "micro_grain_sweep.csv"))
    std::cout << "(csv written)\n";
  return 0;
}

// Pattern workloads: the same fixed-total-work sweep through the shared
// graph executor (native dataflow or simulator), so the dependence
// structure becomes a dial of the micro benchmark.
int run_graph_pattern(const cli_args& args, graph::pattern kind) {
  const bool sim_mode = args.get("mode", "native") == "sim";
  const double total_us = args.get_double("total-us", 200'000.0);
  const int samples = static_cast<int>(args.get_int("samples", 3));
  const auto steps = static_cast<std::uint32_t>(args.get_int("steps", 10));

  std::unique_ptr<core::graph_backend> backend;
  int cores;
  if (sim_mode) {
    const auto model = sim::make_machine_model(args.get("platform", "haswell"));
    cores = static_cast<int>(args.get_int("cores", model.spec.cores));
    backend = std::make_unique<sim::graph_sim_backend>(model);
  } else {
    cores = static_cast<int>(args.get_int("workers", 0));
    backend = std::make_unique<core::native_graph_backend>(
        args.get("policy", "priority-local-fifo"));
  }

  std::cout << "Micro grain sweep (" << backend->name() << "): " << total_us / 1e3
            << " ms of busy work as a " << graph::pattern_name(kind)
            << " graph, ever-coarser tasks\n";

  table_writer table({"task size (us)", "tasks", "edges", "exec time (s)", "COV",
                      "idle-rate (%)", "measured td (us)", "to (us)"});

  for (const double task_us : k_task_sizes_us) {
    const auto n = static_cast<std::uint64_t>(total_us / task_us);
    if (n == 0) break;

    graph::graph_spec g;
    g.kind = kind;
    g.steps = steps;
    g.width = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, n / steps));
    g.radius = static_cast<std::uint32_t>(args.get_int("radius", 1));
    g.fraction = args.get_double("fraction", 0.25);
    g.seed = static_cast<std::uint64_t>(args.get_int("graph-seed", 1));

    graph::kernel_spec k;
    k.kind = graph::kernel_from_name(args.get("kernel", "busy_spin"));
    k.grain_ns = task_us * 1e3;
    k.imbalance = args.get_double("imbalance", 0.0);

    sample_stats times;
    double idle_sum = 0, td_sum = 0, to_sum = 0;
    std::uint64_t tasks = 0, edges = 0;
    for (int s = 0; s < samples; ++s) {
      const core::graph_run_result r = backend->run(g, k, cores);
      tasks = r.tasks;
      edges = r.edges;
      times.add(r.m.exec_time_s);
      const double exec = r.m.exec_ns, func = r.m.func_ns;
      idle_sum += func > 0 ? std::max(0.0, func - exec) / func : 0;
      const auto nt = static_cast<double>(r.m.tasks);
      td_sum += nt > 0 ? exec / nt : 0;
      to_sum += nt > 0 ? std::max(0.0, func - exec) / nt : 0;
    }
    table.add_row({format_number(task_us, 1),
                   format_count(static_cast<std::int64_t>(tasks)),
                   format_count(static_cast<std::int64_t>(edges)),
                   format_number(times.mean(), 4), format_number(times.cov(), 3),
                   format_number(idle_sum / samples * 100, 1),
                   format_number(td_sum / samples / 1e3, 2),
                   format_number(to_sum / samples / 1e3, 2)});
  }
  table.print(std::cout);
  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "micro_grain_sweep.csv"))
    std::cout << "(csv written)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  const std::string workload = args.get("workload", "stencil1d");
  if (workload == "independent") {
    if (args.get("mode", "native") == "sim") return run_sim_independent(args);
    return run_native_independent(args);
  }
  return run_graph_pattern(args, graph::pattern_from_name(workload));
}
