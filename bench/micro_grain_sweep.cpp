// The paper's "micro benchmarks" (§I-C: "We obtained similar results from
// micro benchmarks but for brevity they are not included"): a homogeneous
// task-size sweep on the NATIVE runtime of this host.
//
// N independent tasks of controllable duration (busy-work loop, no
// dependencies) are spawned for a fixed total amount of work; the task size
// sweeps from sub-microsecond to multi-millisecond. The same U-shape and
// idle-rate behaviour as the stencil emerges without any dependency
// structure, confirming the effects come from the scheduler, not from the
// stencil's dataflow graph.
//
//   --total-us=N   total busy work in microseconds (default 2e5 = 0.2 s)
//   --workers=N    worker threads (default: all CPUs)
//   --samples=N
//   --mode=sim     run the same independent-task sweep on a modeled
//                  platform instead (--platform=haswell, --cores=28);
//                  exercises sim_workload::independent.
#include <atomic>
#include <iostream>

#include "core/experiment.hpp"
#include "perf/observability.hpp"
#include "sim/sim_backend.hpp"
#include "sync/latch.hpp"
#include "threads/thread_manager.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// Busy-spins for roughly `ns` nanoseconds (calibrated once).
struct spinner {
  double iters_per_ns;

  spinner() {
    // Calibrate the work loop.
    const std::uint64_t t0 = tsc_clock::now();
    volatile double acc = 1.0;
    constexpr long probe = 2'000'000;
    for (long i = 0; i < probe; ++i) acc = acc * 1.0000001 + 0.1;
    const double ns = static_cast<double>(tsc_clock::to_ns(tsc_clock::now() - t0));
    iters_per_ns = probe / ns;
  }

  void spin(double ns) const {
    const long iters = static_cast<long>(ns * iters_per_ns);
    volatile double acc = 1.0;
    for (long i = 0; i < iters; ++i) acc = acc * 1.0000001 + 0.1;
  }
};

}  // namespace

namespace {

// Simulator variant: the same task-size sweep as independent tasks on a
// modeled platform (the paper's micro benchmark at the paper's core counts).
int run_sim(const cli_args& args) {
  const std::string platform = args.get("platform", "haswell");
  const int cores = static_cast<int>(args.get_int("cores", 28));
  sim::sim_backend backend(platform);
  backend.set_workload(sim::sim_workload::independent);

  std::cout << "Micro grain sweep (sim, " << platform << ", " << cores
            << " cores): independent tasks, no dependency graph\n";
  table_writer table(
      {"partition", "tasks", "exec time (s)", "idle-rate (%)", "pending acc (k)"});
  stencil::params base;
  base.total_points = static_cast<std::size_t>(args.get_int("points", 10'000'000));
  base.time_steps = static_cast<std::size_t>(args.get_int("steps", 10));
  for (const std::size_t ps :
       core::granularity_sweep(160, base.total_points, 3)) {
    stencil::params p = base;
    p.partition_size = ps;
    p.normalize();
    const auto m = backend.run(p, cores);
    const double idle =
        m.func_ns > 0 ? std::max(0.0, m.func_ns - m.exec_ns) / m.func_ns : 0;
    table.add_row({format_count(static_cast<std::int64_t>(p.partition_size)),
                   format_count(static_cast<std::int64_t>(m.tasks)),
                   format_number(m.exec_time_s, 4), format_number(idle * 100, 1),
                   format_number(static_cast<double>(m.pending_accesses) / 1e3, 1)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));
  if (args.get("mode", "native") == "sim") return run_sim(args);
  const double total_us = args.get_double("total-us", 200'000.0);
  const int workers = static_cast<int>(args.get_int("workers", 0));
  const int samples = static_cast<int>(args.get_int("samples", 3));

  const spinner work;
  std::cout << "Micro grain sweep: " << total_us / 1e3
            << " ms of busy work split into ever-coarser tasks (native runtime)\n";

  table_writer table({"task size (us)", "tasks", "exec time (s)", "COV", "idle-rate (%)",
                      "measured td (us)", "to (us)"});

  for (const double task_us : {0.5, 2.0, 8.0, 32.0, 128.0, 512.0, 2'048.0, 8'192.0,
                               32'768.0}) {
    const auto n = static_cast<std::size_t>(total_us / task_us);
    if (n == 0) break;

    sample_stats times;
    double idle_sum = 0, td_sum = 0, to_sum = 0;
    for (int s = 0; s < samples; ++s) {
      scheduler_config cfg;
      cfg.num_workers = workers;
      cfg.pin_workers = topology::host().num_cpus() >= workers;
      thread_manager tm(cfg);
      tm.reset_counters();

      stopwatch clock;
      latch done(static_cast<std::int64_t>(n));
      for (std::size_t i = 0; i < n; ++i)
        tm.spawn([&work, &done, task_us] {
          work.spin(task_us * 1e3);
          done.count_down();
        });
      done.wait();
      times.add(clock.elapsed_s());

      const auto t = tm.counter_totals();
      const double exec = static_cast<double>(t.exec_ns);
      const double func = static_cast<double>(t.func_ns);
      idle_sum += func > 0 ? std::max(0.0, func - exec) / func : 0;
      td_sum += t.tasks_executed ? exec / static_cast<double>(t.tasks_executed) : 0;
      to_sum += t.tasks_executed
                    ? std::max(0.0, func - exec) / static_cast<double>(t.tasks_executed)
                    : 0;
    }
    table.add_row({format_number(task_us, 1),
                   format_count(static_cast<std::int64_t>(n)),
                   format_number(times.mean(), 4), format_number(times.cov(), 3),
                   format_number(idle_sum / samples * 100, 1),
                   format_number(td_sum / samples / 1e3, 2),
                   format_number(to_sum / samples / 1e3, 2)});
  }
  table.print(std::cout);
  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "micro_grain_sweep.csv"))
    std::cout << "(csv written)\n";
  return 0;
}
