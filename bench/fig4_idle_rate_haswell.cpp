// Fig. 4 (a–c): idle-rate and execution time vs. partition size on the
// Haswell node with 8 / 16 / 28 cores.
//
// Expected shape (paper §IV-A): idle-rate up to ~90 % for very fine grains,
// falling through the mid range, and rising again for coarse grains where
// starved cores keep searching for work. In the 20 k–100 k band execution
// time *decreases while idle-rate increases* — the wait-time effect that
// makes idle-rate alone insufficient to pick the optimum.
//
// --select additionally evaluates the paper's §IV-A claim: a 30 % idle-rate
// threshold picks a partition size whose execution time is within the noise
// of the optimum.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 4: Idle-rate, Intel Haswell\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"idle-rate (%)", [](const core::sweep_point& p) { return p.m.idle_rate * 100.0; }, 1},
  };

  std::vector<std::vector<core::sweep_point>> series;
  run_metric_figure(opt, "fig4", "haswell", {8, 16, 28}, 50, columns, &series);

  if (opt.select && !series.empty()) {
    std::cout << "\nSelector check (paper §IV-A, threshold 30% on the largest core count):\n";
    const auto& sweep = series.back();
    const auto best = core::best_exec_time(sweep);
    std::cout << "  best partition: " << best.partition_size << " at "
              << format_number(best.exec_time_s, 4) << " s\n";
    if (const auto sel = core::idle_rate_threshold(sweep, 0.30)) {
      std::cout << "  idle-rate<=30% picks: " << sel->partition_size << " at "
                << format_number(sel->exec_time_s, 4) << " s ("
                << format_number(sel->regret * 100.0, 1) << "% above optimum)\n";
    } else {
      std::cout << "  no partition satisfies the threshold\n";
    }
  }
  return 0;
}
