// A/B/C micro-benchmark for the scheduler's work-transfer mechanisms: the
// lock-free Chase–Lev deque (src/queues/chase_lev_deque.hpp), the old
// mutex-protected std::deque it replaced (kept here, verbatim in spirit, as
// the baseline), and the channel-steal request/delivery protocol
// (src/threads/policy_channel_steal.hpp): a private deque plus per-thief
// SPSC request and delivery rings with steal-half batching.
//
// Two measurements per implementation:
//   * owner: single-thread push/pop round-trips — the policy's hot path when
//     a worker spawns and immediately executes fine-grained tasks;
//   * steal: one owner continuously pushing while N thieves steal — the
//     contended path that sets fine-grain scalability. For "channel" a
//     steal is a request answered with a batch; the reported rate counts
//     delivered items, the unit comparable with per-item deque steals.
//
//   --impl=chaselev|mutex|channel|all   which to run (default all;
//                                       "both" = chaselev+mutex, as before)
//   --ops=N                      owner push/pop round-trips (default 5e6)
//   --steal-ms=N                 duration of each steal phase (default 300)
//   --thieves=a,b,c              thief counts (default 1,2,4)
//   --json=PATH                  append machine-readable results
#include <algorithm>
#include <atomic>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "perf/observability.hpp"
#include "queues/chase_lev_deque.hpp"
#include "queues/spsc_ring.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// The pre-Chase–Lev deque_slot of work_stealing_policy: every operation
// takes the mutex.
class locked_deque {
 public:
  void push(std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(v);
  }
  std::optional<std::uint64_t> pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::uint64_t v = items_.back();
    items_.pop_back();
    return v;
  }
  std::optional<std::uint64_t> steal() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::uint64_t v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  std::mutex mutex_;
  std::deque<std::uint64_t> items_;
};

struct result_row {
  std::string impl;
  std::string mode;  // "owner" or "steal"
  int thieves = 0;
  double mops = 0;  // successful operations per second, millions
};

// Owner-side: interleaved push/pop in batches of 8, like a worker spawning a
// burst of children and draining them LIFO.
template <typename Deque>
double owner_throughput(Deque& d, std::uint64_t ops) {
  stopwatch clock;
  std::uint64_t done = 0;
  while (done < ops) {
    for (int i = 0; i < 8; ++i) d.push(done + static_cast<std::uint64_t>(i));
    for (int i = 0; i < 8; ++i) (void)d.pop();
    done += 8;
  }
  const double s = clock.elapsed_s();
  // One round-trip = push + pop = 2 queue operations.
  return static_cast<double>(2 * done) / s / 1e6;
}

// Steal-side: the owner pushes (and occasionally pops) for `ms`; thieves
// hammer steal(). Reported rate counts successful steals only.
template <typename Deque>
double steal_throughput(Deque& d, int thieves, int ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> steals{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t)
    pool.emplace_back([&] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire))
        if (d.steal()) ++n;
      steals.fetch_add(n, std::memory_order_relaxed);
    });

  stopwatch clock;
  std::uint64_t pushed = 0;
  while (clock.elapsed_s() * 1e3 < ms) {
    for (int i = 0; i < 64; ++i) d.push(pushed++);
    for (int i = 0; i < 8; ++i) (void)d.pop();  // owner stays in the mix
  }
  const double s = clock.elapsed_s();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  while (d.pop()) {  // drain
  }
  return static_cast<double>(steals.load()) / s / 1e6;
}

// --- channel-steal protocol rig --------------------------------------------
// One owner thread with a private (unsynchronized) deque; each thief has a
// dedicated SPSC request ring and delivery ring toward the owner, mirroring
// channel_steal_policy's token protocol: the thief keeps at most one request
// outstanding, the owner answers with half its deque (capped at the ring
// capacity) and announces the batch size with a release store the thief
// acquires before draining.
struct thief_lane {
  spsc_ring<std::uint8_t> req{1};
  spsc_ring<std::uint64_t> delivery{4096};
  std::atomic<std::uint32_t> served{0};
};

// Owner-side: the private deque needs no atomics at all — this is the spawn
// hot path message-passing stealing buys back.
double channel_owner_throughput(std::uint64_t ops) {
  std::deque<std::uint64_t> d;
  stopwatch clock;
  std::uint64_t done = 0;
  while (done < ops) {
    for (int i = 0; i < 8; ++i) d.push_back(done + static_cast<std::uint64_t>(i));
    for (int i = 0; i < 8; ++i) {
      (void)d.back();
      d.pop_back();
    }
    done += 8;
  }
  const double s = clock.elapsed_s();
  return static_cast<double>(2 * done) / s / 1e6;
}

double channel_steal_throughput(int thieves, int ms) {
  std::vector<std::unique_ptr<thief_lane>> lanes;
  for (int t = 0; t < thieves; ++t) lanes.push_back(std::make_unique<thief_lane>());
  std::deque<std::uint64_t> d;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> received{0};

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t)
    pool.emplace_back([&, t] {
      thief_lane& lane = *lanes[static_cast<std::size_t>(t)];
      std::uint64_t n = 0;
      bool outstanding = false;
      unsigned idle = 0;  // spin-then-yield, like the runtime's idle backoff
      while (!stop.load(std::memory_order_acquire)) {
        if (!outstanding) {
          outstanding = lane.req.push(std::uint8_t{1});
          continue;
        }
        const std::uint32_t batch = lane.served.load(std::memory_order_acquire);
        if (batch == 0) {
          // An announcement needs the owner to run; on an oversubscribed
          // host spinning here just steals its timeslice.
          if (++idle >= 64) std::this_thread::yield();
          continue;
        }
        idle = 0;
        for (std::uint32_t i = 0; i < batch; ++i) {
          auto v = lane.delivery.pop();
          if (v.has_value()) ++n;  // announced batches always arrive in full
        }
        lane.served.store(0, std::memory_order_relaxed);
        outstanding = false;
      }
      received.fetch_add(n, std::memory_order_relaxed);
    });

  stopwatch clock;
  std::uint64_t pushed = 0;
  // Backlog bound: in the runtime task supply is finite; here it keeps the
  // private deque (and the bench's memory) bounded while thieves wait for
  // their timeslice.
  constexpr std::size_t bound = 16384;
  // Tokens the owner popped while its deque was empty; served next round
  // (in the runtime this is the forward/decline path).
  std::vector<bool> waiting(static_cast<std::size_t>(thieves), false);
  while (clock.elapsed_s() * 1e3 < ms) {
    while (d.size() < bound) {
      d.push_back(pushed++);
      if ((pushed & 7) == 0) {  // owner stays in the mix
        d.pop_back();
      }
    }
    // Cooperation point: serve every waiting request with half the deque.
    for (std::size_t t = 0; t < lanes.size(); ++t) {
      thief_lane& lane = *lanes[t];
      if (!waiting[t] && lane.req.pop().has_value()) waiting[t] = true;
      if (!waiting[t] || d.empty()) continue;
      const std::size_t batch =
          std::min({std::max<std::size_t>(1, d.size() / 2), d.size(),
                    lane.delivery.capacity()});
      for (std::size_t i = 0; i < batch; ++i) {
        (void)lane.delivery.push(std::move(d.front()));
        d.pop_front();
      }
      lane.served.store(static_cast<std::uint32_t>(batch),
                        std::memory_order_release);
      waiting[t] = false;
    }
    // An announced batch is useful only once its thief runs; on an
    // oversubscribed host burning the rest of the quantum re-polling empty
    // request rings would make the measurement quantum-bound, not
    // protocol-bound. Hand the CPU over.
    std::this_thread::yield();
  }
  const double s = clock.elapsed_s();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return static_cast<double>(received.load()) / s / 1e6;
}

void run_channel(std::uint64_t ops, int steal_ms,
                 const std::vector<std::int64_t>& thieves,
                 std::vector<result_row>& out) {
  out.push_back({"channel", "owner", 0, channel_owner_throughput(ops)});
  for (const std::int64_t t : thieves)
    out.push_back({"channel", "steal", static_cast<int>(t),
                   channel_steal_throughput(static_cast<int>(t), steal_ms)});
}

template <typename Deque>
void run_impl(const std::string& name, std::uint64_t ops, int steal_ms,
              const std::vector<std::int64_t>& thieves,
              std::vector<result_row>& out) {
  {
    Deque d;
    out.push_back({name, "owner", 0, owner_throughput(d, ops)});
  }
  for (const std::int64_t t : thieves) {
    Deque d;
    out.push_back(
        {name, "steal", static_cast<int>(t),
         steal_throughput(d, static_cast<int>(t), steal_ms)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));
  const std::string impl = args.get("impl", "all");
  const auto ops = static_cast<std::uint64_t>(args.get_int("ops", 5'000'000));
  const int steal_ms = static_cast<int>(args.get_int("steal-ms", 300));
  const std::vector<std::int64_t> thieves =
      args.get_int_list("thieves", {1, 2, 4});

  std::cout << "Steal throughput: Chase-Lev vs mutex deque vs channel-steal\n";
  std::vector<result_row> rows;
  if (impl == "chaselev" || impl == "both" || impl == "all")
    run_impl<chase_lev_deque<std::uint64_t>>("chaselev", ops, steal_ms, thieves,
                                             rows);
  if (impl == "mutex" || impl == "both" || impl == "all")
    run_impl<locked_deque>("mutex", ops, steal_ms, thieves, rows);
  if (impl == "channel" || impl == "all")
    run_channel(ops, steal_ms, thieves, rows);
  if (rows.empty()) {
    std::cerr << "unknown --impl=" << impl << " (chaselev|mutex|channel|all)\n";
    return 2;
  }

  table_writer table({"impl", "mode", "thieves", "Mops/s"});
  for (const auto& r : rows)
    table.add_row({r.impl, r.mode, std::to_string(r.thieves),
                   format_number(r.mops, 2)});
  table.print(std::cout);

  // Headline ratio for the acceptance gate: owner-side speedup.
  double owner_cl = 0, owner_mx = 0;
  for (const auto& r : rows) {
    if (r.mode != "owner") continue;
    if (r.impl == "chaselev") owner_cl = r.mops;
    if (r.impl == "mutex") owner_mx = r.mops;
  }
  if (owner_cl > 0 && owner_mx > 0)
    std::cout << "owner-side speedup (chaselev / mutex): "
              << format_number(owner_cl / owner_mx, 2) << "x\n";

  // Thief-side scaling gate: channel-steal batching vs Chase–Lev per-item
  // steals at the highest thief count measured.
  double steal_cl = 0, steal_ch = 0;
  int max_thieves = 0;
  for (const auto& r : rows)
    if (r.mode == "steal") max_thieves = std::max(max_thieves, r.thieves);
  for (const auto& r : rows) {
    if (r.mode != "steal" || r.thieves != max_thieves) continue;
    if (r.impl == "chaselev") steal_cl = r.mops;
    if (r.impl == "channel") steal_ch = r.mops;
  }
  if (steal_cl > 0 && steal_ch > 0)
    std::cout << "thief-side speedup at " << max_thieves
              << " thieves (channel / chaselev): "
              << format_number(steal_ch / steal_cl, 2) << "x\n";

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"micro_steal_throughput\",\n  \"ops\": " << ops
      << ",\n  \"steal_ms\": " << steal_ms << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      f << "    {\"impl\": \"" << r.impl << "\", \"mode\": \"" << r.mode
        << "\", \"thieves\": " << r.thieves << ", \"mops\": " << r.mops << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }
  return 0;
}
