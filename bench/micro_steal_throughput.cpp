// A/B micro-benchmark for the scheduler's work-stealing deque: the lock-free
// Chase–Lev implementation (src/queues/chase_lev_deque.hpp) against the old
// mutex-protected std::deque it replaced (kept here, verbatim in spirit, as
// the baseline).
//
// Two measurements per implementation:
//   * owner: single-thread push/pop round-trips — the policy's hot path when
//     a worker spawns and immediately executes fine-grained tasks;
//   * steal: one owner continuously pushing while N thieves steal — the
//     contended path that sets fine-grain scalability.
//
//   --impl=chaselev|mutex|both   which deque(s) to run (default both)
//   --ops=N                      owner push/pop round-trips (default 5e6)
//   --steal-ms=N                 duration of each steal phase (default 300)
//   --thieves=a,b,c              thief counts (default 1,2,4)
//   --json=PATH                  append machine-readable results
#include <atomic>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "perf/observability.hpp"
#include "queues/chase_lev_deque.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

// The pre-Chase–Lev deque_slot of work_stealing_policy: every operation
// takes the mutex.
class locked_deque {
 public:
  void push(std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(v);
  }
  std::optional<std::uint64_t> pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::uint64_t v = items_.back();
    items_.pop_back();
    return v;
  }
  std::optional<std::uint64_t> steal() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::uint64_t v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  std::mutex mutex_;
  std::deque<std::uint64_t> items_;
};

struct result_row {
  std::string impl;
  std::string mode;  // "owner" or "steal"
  int thieves = 0;
  double mops = 0;  // successful operations per second, millions
};

// Owner-side: interleaved push/pop in batches of 8, like a worker spawning a
// burst of children and draining them LIFO.
template <typename Deque>
double owner_throughput(Deque& d, std::uint64_t ops) {
  stopwatch clock;
  std::uint64_t done = 0;
  while (done < ops) {
    for (int i = 0; i < 8; ++i) d.push(done + static_cast<std::uint64_t>(i));
    for (int i = 0; i < 8; ++i) (void)d.pop();
    done += 8;
  }
  const double s = clock.elapsed_s();
  // One round-trip = push + pop = 2 queue operations.
  return static_cast<double>(2 * done) / s / 1e6;
}

// Steal-side: the owner pushes (and occasionally pops) for `ms`; thieves
// hammer steal(). Reported rate counts successful steals only.
template <typename Deque>
double steal_throughput(Deque& d, int thieves, int ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> steals{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t)
    pool.emplace_back([&] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire))
        if (d.steal()) ++n;
      steals.fetch_add(n, std::memory_order_relaxed);
    });

  stopwatch clock;
  std::uint64_t pushed = 0;
  while (clock.elapsed_s() * 1e3 < ms) {
    for (int i = 0; i < 64; ++i) d.push(pushed++);
    for (int i = 0; i < 8; ++i) (void)d.pop();  // owner stays in the mix
  }
  const double s = clock.elapsed_s();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  while (d.pop()) {  // drain
  }
  return static_cast<double>(steals.load()) / s / 1e6;
}

template <typename Deque>
void run_impl(const std::string& name, std::uint64_t ops, int steal_ms,
              const std::vector<std::int64_t>& thieves,
              std::vector<result_row>& out) {
  {
    Deque d;
    out.push_back({name, "owner", 0, owner_throughput(d, ops)});
  }
  for (const std::int64_t t : thieves) {
    Deque d;
    out.push_back(
        {name, "steal", static_cast<int>(t),
         steal_throughput(d, static_cast<int>(t), steal_ms)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));
  const std::string impl = args.get("impl", "both");
  const auto ops = static_cast<std::uint64_t>(args.get_int("ops", 5'000'000));
  const int steal_ms = static_cast<int>(args.get_int("steal-ms", 300));
  const std::vector<std::int64_t> thieves =
      args.get_int_list("thieves", {1, 2, 4});

  std::cout << "Steal-deque throughput: Chase-Lev (lock-free) vs mutex deque\n";
  std::vector<result_row> rows;
  if (impl == "chaselev" || impl == "both")
    run_impl<chase_lev_deque<std::uint64_t>>("chaselev", ops, steal_ms, thieves,
                                             rows);
  if (impl == "mutex" || impl == "both")
    run_impl<locked_deque>("mutex", ops, steal_ms, thieves, rows);
  if (rows.empty()) {
    std::cerr << "unknown --impl=" << impl << " (chaselev|mutex|both)\n";
    return 2;
  }

  table_writer table({"impl", "mode", "thieves", "Mops/s"});
  for (const auto& r : rows)
    table.add_row({r.impl, r.mode, std::to_string(r.thieves),
                   format_number(r.mops, 2)});
  table.print(std::cout);

  // Headline ratio for the acceptance gate: owner-side speedup.
  double owner_cl = 0, owner_mx = 0;
  for (const auto& r : rows) {
    if (r.mode != "owner") continue;
    if (r.impl == "chaselev") owner_cl = r.mops;
    if (r.impl == "mutex") owner_mx = r.mops;
  }
  if (owner_cl > 0 && owner_mx > 0)
    std::cout << "owner-side speedup (chaselev / mutex): "
              << format_number(owner_cl / owner_mx, 2) << "x\n";

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"micro_steal_throughput\",\n  \"ops\": " << ops
      << ",\n  \"steal_ms\": " << steal_ms << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      f << "    {\"impl\": \"" << r.impl << "\", \"mode\": \"" << r.mode
        << "\", \"thieves\": " << r.thieves << ", \"mops\": " << r.mops << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }
  return 0;
}
