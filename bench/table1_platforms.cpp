// Regenerates Table I: the specifications of the paper's four experimental
// platforms, plus the build host for reference. The four specs drive the
// simulator's machine models (src/sim/machine_model.cpp).
#include <iostream>

#include "perf/observability.hpp"
#include "topo/platform_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gran;

namespace {

std::string cache_str(std::size_t kb) { return std::to_string(kb) + " KB"; }

void add_platform(table_writer& t, const platform_spec& p) {
  t.add_row({p.name, p.processor,
             format_number(p.clock_ghz, 1) + " GHz" +
                 (p.turbo_ghz > 0 ? " (" + format_number(p.turbo_ghz, 1) + " turbo)" : ""),
             p.microarch,
             p.hardware_threads > 1 ? std::to_string(p.hardware_threads) + "-way" : "off",
             std::to_string(p.cores), std::to_string(p.numa_domains),
             cache_str(p.l1d_kb) + " L1(D) / " + cache_str(p.l2_kb) + " L2",
             p.shared_cache_mb ? std::to_string(p.shared_cache_mb) + " MB" : "-",
             p.ram_gb ? std::to_string(p.ram_gb) + " GB" : "?"});
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args(argc, argv);
  perf::observability_session obs(perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env()));

  table_writer table({"node", "processor", "clock", "microarchitecture", "SMT", "cores",
                      "NUMA", "cache/core", "shared cache", "RAM"});
  for (const auto& p : paper_platforms()) add_platform(table, p);
  add_platform(table, host_spec());

  std::cout << "Table I: Platform specifications (paper's four nodes + this host)\n";
  table.print(std::cout);

  const std::string csv = args.get("csv", "");
  if (!csv.empty() && table.save_csv(csv + "table1.csv"))
    std::cout << "(csv written to " << csv << "table1.csv)\n";
  return 0;
}
