// A/B micro-benchmark for the live telemetry plane (perf/telemetry.hpp).
//
// Measures end-to-end task throughput of a thread_manager running a
// fine-grained spin workload with the telemetry session OFF vs ON (JSONL
// streaming + windowed aggregation + stall watchdog at --metrics-interval-us).
// The always-on heartbeat stamping in the scheduler loop is present on both
// sides — what this bench isolates is the cost of the telemetry thread:
// registry sweeps, histogram deltas, serialization, watchdog evaluation.
//
// OFF and ON runs are interleaved round-robin (off, on, off, on, ...), so
// slow host drift — thermal, a background build, scheduler mood — lands on
// both sides instead of biasing the delta (the same sampling discipline as
// ablation_adaptive). The gated overhead is the MEDIAN of the per-pair
// deltas: each off run is compared against the on run adjacent to it in
// time, and the median discards the pairs a host hiccup landed on — on a
// noisy single-core QEMU runner individual pairs swing by a few percent in
// either direction.
//
//   --tasks=N               tasks per run (default 40000)
//   --spin=N                per-task spin iterations (default 2000, ~1-2 us)
//   --workers=N             worker threads (default 4)
//   --reps=N                interleaved off/on pairs (default 7)
//   --metrics-interval-us=N telemetry window period for the ON runs
//                           (default 100000, the production default — the
//                           configuration the 2% budget is promised for; on
//                           a single-core host every telemetry tick is pure
//                           CPU subtraction from the workers, so a faster
//                           window scales the cost up proportionally. Pass
//                           20000 to stress a 5x faster window.)
//   --out=PATH              JSONL destination for the ON runs (default
//                           /dev/null; point at a file to include file I/O)
//   --max-overhead-pct=X    absolute gate: exit 1 when the telemetry-ON
//                           overhead exceeds X% (default 2.0, the budget
//                           docs/TELEMETRY.md promises)
//   --json=PATH             write machine-readable results
//   --baseline=PATH         compare against a previous --json dump; exits 1
//                           when the telemetry-OFF throughput regressed more
//                           than --tolerance-pct (default 2.0)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "perf/telemetry.hpp"
#include "threads/thread_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gran;

namespace {

volatile double g_sink = 0;
void spin_task(std::uint64_t iters) {
  double x = 1.000000119;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * 1.000000119 + 1e-9;
  g_sink = x;
}

double run_throughput(int workers, std::uint64_t tasks, std::uint64_t spin) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  stopwatch clock;
  for (std::uint64_t i = 0; i < tasks; ++i)
    tm.spawn([spin] { spin_task(spin); }, task_priority::normal, "spin");
  tm.wait_idle();
  return static_cast<double>(tasks) / clock.elapsed_s();
}

double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto tasks = static_cast<std::uint64_t>(args.get_int("tasks", 40'000));
  const auto spin = static_cast<std::uint64_t>(args.get_int("spin", 2'000));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int reps = static_cast<int>(args.get_int("reps", 7));
  const auto interval_us =
      static_cast<std::uint64_t>(args.get_int("metrics-interval-us", 100'000));
  const std::string out = args.get("out", "/dev/null");

  // Interleaved off/on pairs. The ON side of each pair gets its own
  // streaming telemetry session so the measured run includes session
  // start/stop, exactly as a production run would.
  std::vector<double> off_runs, on_runs, pair_pct;
  std::uint64_t windows = 0;
  for (int r = 0; r < reps; ++r) {
    off_runs.push_back(run_throughput(workers, tasks, spin));
    perf::telemetry_options to;
    to.jsonl_out = out;
    to.interval_us = interval_us;
    to.install_signal_handler = false;  // keep the bench signal-neutral
    perf::telemetry_session session(std::move(to));
    on_runs.push_back(run_throughput(workers, tasks, spin));
    session.stop();
    windows += session.windows_exported();
    pair_pct.push_back((off_runs.back() / on_runs.back() - 1.0) * 100.0);
  }

  // Best-of throughputs for the human and the cross-session regression
  // gate; median pair delta for the overhead gate.
  const double off_tps = *std::max_element(off_runs.begin(), off_runs.end());
  const double on_tps = *std::max_element(on_runs.begin(), on_runs.end());
  std::sort(pair_pct.begin(), pair_pct.end());
  const double overhead_pct = pair_pct[pair_pct.size() / 2];

  std::cout << "Telemetry overhead: " << workers << " workers, " << tasks
            << " tasks x " << spin << " spin iters, " << reps
            << " interleaved pairs, window " << interval_us << " us -> "
            << out << "\n";
  table_writer table({"measurement", "value"});
  table.add_row({"tasks/s off (best)", format_number(off_tps / 1e3, 1) + " k"});
  table.add_row({"tasks/s on (best)", format_number(on_tps / 1e3, 1) + " k"});
  table.add_row({"overhead (median pair)", format_number(overhead_pct, 2) + " %"});
  table.add_row({"windows streamed", std::to_string(windows)});
  table.print(std::cout);

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream f(json);
    f << "{\n  \"bench\": \"micro_telemetry_overhead\",\n"
      << "  \"tasks\": " << tasks << ",\n  \"spin\": " << spin
      << ",\n  \"workers\": " << workers
      << ",\n  \"metrics_interval_us\": " << interval_us
      << ",\n  \"off_tasks_per_s\": " << off_tps
      << ",\n  \"on_tasks_per_s\": " << on_tps
      << ",\n  \"overhead_pct\": " << overhead_pct
      << ",\n  \"windows\": " << windows << "\n}\n";
    std::cout << "(json written to " << json << ")\n";
  }

  int rc = 0;
  const double max_overhead = args.get_double("max-overhead-pct", 2.0);
  if (overhead_pct > max_overhead) {
    std::cerr << "FAIL: telemetry overhead " << format_number(overhead_pct, 2)
              << " % > " << format_number(max_overhead, 1) << " % budget\n";
    rc = 1;
  } else {
    std::cout << "OK: telemetry overhead within "
              << format_number(max_overhead, 1) << " % budget\n";
  }

  const std::string baseline = args.get("baseline", "");
  if (!baseline.empty()) {
    std::ifstream f(baseline);
    if (!f) {
      std::cerr << "cannot read baseline " << baseline << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double base_off = json_number(ss.str(), "off_tasks_per_s");
    if (!(base_off > 0)) {
      std::cerr << "baseline " << baseline << " has no off_tasks_per_s\n";
      return 2;
    }
    const double tolerance = args.get_double("tolerance-pct", 2.0);
    const double delta_pct = (1.0 - off_tps / base_off) * 100.0;
    std::cout << "telemetry-off vs baseline: " << format_number(delta_pct, 2)
              << " % slower (tolerance " << format_number(tolerance, 1)
              << " %)\n";
    if (delta_pct > tolerance) {
      std::cerr << "FAIL: telemetry-off throughput regressed "
                << format_number(delta_pct, 2) << " % > "
                << format_number(tolerance, 1) << " %\n";
      rc = 1;
    } else {
      std::cout << "OK: telemetry-off regression within tolerance\n";
    }
  }
  return rc;
}
