// Fig. 10 (a–c): pending-queue accesses and execution time vs. partition
// size on the Xeon Phi, 16 / 32 / 60 cores, 5 time steps. Same
// timestamp-free grain-size signal as Fig. 9 on the manycore platform.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  std::cout << "Fig. 10: Pending Queue Accesses, Intel Xeon Phi\n";
  const std::vector<metric_column> columns = {
      {"exec time (s)", [](const core::sweep_point& p) { return p.exec_time_s.mean(); }, 4},
      {"pending accesses (k)",
       [](const core::sweep_point& p) { return static_cast<double>(p.mean.pending_accesses) / 1e3; },
       1},
      {"pending misses (k)",
       [](const core::sweep_point& p) { return static_cast<double>(p.mean.pending_misses) / 1e3; },
       1},
  };
  run_metric_figure(opt, "fig10", "xeon-phi", {16, 32, 60}, 5, columns);
  return 0;
}
