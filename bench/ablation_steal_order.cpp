// Ablation: NUMA-aware steal order (paper Fig. 1's 6-step search: local
// domain staged -> pending, then remote domains) vs. a NUMA-oblivious ring
// search over all workers. The physical cross-domain penalty applies either
// way; only the probe *order* changes.
//
// Measured outcome (see EXPERIMENTS.md): execution time is nearly identical
// — on this workload steals are rare relative to task count, so the search
// order is not load-bearing; what changes visibly is *where* work migrates
// (the stolen-task counts differ by 20-30 % at fine grain). The interesting
// conclusion is a negative result: the 6-step order matters for locality,
// not for the throughput of this dependency pattern.
#include <iostream>

#include "bench/fig_common.hpp"

using namespace gran;
using namespace gran::bench;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  perf::observability_session obs(bench::observability_options(args));
  const fig_options opt = parse_fig_options(args);

  const fig_plan plan = make_plan(opt, "haswell", {28}, 50);
  const int cores = plan.cores.front();
  const std::string platform = opt.platform.empty() ? "haswell" : opt.platform;

  std::cout << "Ablation: NUMA-aware vs. oblivious steal order (" << platform << ", "
            << cores << " cores)\n";

  table_writer table({"partition", "numa-aware (s)", "oblivious (s)", "stolen aware",
                      "stolen oblivious"});

  struct run_out {
    std::vector<core::sweep_point> pts;
  };
  std::vector<run_out> outs(2);
  std::vector<std::uint64_t> stolen[2];

  for (int aware = 1; aware >= 0; --aware) {
    sim::sim_backend backend(platform);
    backend.set_numa_aware_steal(aware == 1);
    core::sweep_config cfg;
    cfg.base = plan.base;
    cfg.partition_sizes = plan.partitions;
    cfg.cores = cores;
    cfg.samples = plan.samples;
    cfg.measure_baseline = false;
    core::granularity_experiment exp(backend, cfg);
    outs[static_cast<std::size_t>(1 - aware)].pts = exp.run();
    // Steal counts per point via direct simulation (the sweep driver only
    // keeps run_measurement; re-simulate once per point for the counts).
    for (const std::size_t ps : plan.partitions) {
      sim::sim_config scfg;
      scfg.model = backend.model();
      scfg.cores = cores;
      scfg.workload = plan.base;
      scfg.workload.partition_size = ps;
      scfg.workload.normalize();
      scfg.numa_aware_steal = aware == 1;
      stolen[1 - aware].push_back(sim::simulate_stencil(scfg).tasks_stolen);
    }
  }

  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    table.add_row({format_count(static_cast<std::int64_t>(plan.partitions[i])),
                   format_number(outs[0].pts[i].exec_time_s.mean(), 4),
                   format_number(outs[1].pts[i].exec_time_s.mean(), 4),
                   format_count(static_cast<std::int64_t>(stolen[0][i])),
                   format_count(static_cast<std::int64_t>(stolen[1][i]))});
  }
  emit_table(table, "Ablation: steal-order execution time (s)", opt.csv_prefix,
             "ablation_steal_order");
  return 0;
}
