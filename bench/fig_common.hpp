// Shared scaffolding for the figure benches.
//
// Every figure bench accepts:
//   --mode=sim|native       sim (default): modeled platform of the figure;
//                           native: the real runtime on this host
//   --platform=<name>       override the modeled platform
//   --cores=a,b,c           override the figure's core counts
//   --points=N --steps=N    workload size (defaults are the paper's figures
//                           scaled to finish in seconds; --full restores the
//                           paper's 100 M points)
//   --samples=N             repetitions per point (paper: 10; default lower)
//   --min-partition / --max-partition / --per-decade   the granularity axis
//   --full                  paper-scale workload (100 M points)
//   --csv=PREFIX            also write PREFIX<tag>.csv per series
//   --quiet                 suppress progress lines
//
// plus the observability knobs (native mode; see docs/TRACING.md):
//   --trace-out=PATH         export a Chrome/Perfetto trace of the run
//   --trace-buf=N            per-worker trace ring capacity, events
//   --sample-interval-us=N   background counter sampling period (>0 = on)
//   --sample-out=PATH        time-series dump (.csv or .json)
//   --sample-set=P1,P2       counter prefixes to sample (default /threads)
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/selectors.hpp"
#include "perf/observability.hpp"
#include "sim/sim_backend.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace gran::bench {

struct fig_options {
  std::string mode = "sim";
  std::string platform;                 // figure default
  std::vector<std::int64_t> cores;      // figure default
  std::size_t points = 0;               // 0 = figure default
  std::size_t steps = 0;
  int samples = 0;
  std::size_t min_partition = 0;
  std::size_t max_partition = 0;
  int per_decade = 0;
  bool full = false;
  bool quiet = false;
  std::string csv_prefix;
  bool select = false;                  // run the §IV selector claims
};

// Tracing/sampling session for a bench main(): CLI flags layered over the
// GRAN_TRACE / GRAN_SAMPLE_US env knobs. Construct it before the first
// thread_manager; artifacts are written when it goes out of scope.
inline perf::observability_session::options observability_options(const cli_args& args) {
  return perf::observability_session::options_from_cli(
      args, perf::observability_session::options_from_env());
}

inline fig_options parse_fig_options(const cli_args& args) {
  fig_options opt;
  opt.mode = args.get("mode", "sim");
  opt.platform = args.get("platform", "");
  opt.cores = args.get_int_list("cores", {});
  opt.points = static_cast<std::size_t>(args.get_int("points", 0));
  opt.steps = static_cast<std::size_t>(args.get_int("steps", 0));
  opt.samples = static_cast<int>(args.get_int("samples", 0));
  opt.min_partition = static_cast<std::size_t>(args.get_int("min-partition", 0));
  opt.max_partition = static_cast<std::size_t>(args.get_int("max-partition", 0));
  opt.per_decade = static_cast<int>(args.get_int("per-decade", 0));
  opt.full = args.get_bool("full", false);
  opt.quiet = args.get_bool("quiet", false);
  opt.csv_prefix = args.get("csv", "");
  opt.select = args.has("select");
  return opt;
}

// Resolved experiment plan for one figure.
struct fig_plan {
  std::unique_ptr<core::experiment_backend> backend;
  std::vector<int> cores;
  stencil::params base;
  std::vector<std::size_t> partitions;
  int samples = 1;
  std::string platform_label;
};

// Builds the plan from figure defaults + CLI overrides. `default_platform`
// is the paper's platform for the figure; `default_cores` its subplot core
// counts; `default_steps` 50 (Haswell figures) or 5 (Xeon Phi figures).
inline fig_plan make_plan(const fig_options& opt, const std::string& default_platform,
                          std::vector<int> default_cores, std::size_t default_steps,
                          std::size_t default_points = 10'000'000) {
  fig_plan plan;
  const std::string platform =
      opt.platform.empty() ? default_platform : opt.platform;
  plan.platform_label = platform;

  if (opt.mode == "native") {
    plan.backend = std::make_unique<core::native_backend>();
    plan.platform_label = "native-host";
  } else {
    plan.backend = std::make_unique<sim::sim_backend>(platform);
  }

  if (!opt.cores.empty()) {
    for (const auto c : opt.cores) plan.cores.push_back(static_cast<int>(c));
  } else {
    plan.cores = std::move(default_cores);
  }

  // Native mode runs real work on this host: default to a smaller grid so a
  // full sweep stays in the minutes range even on small machines.
  if (opt.mode == "native" && !opt.full && opt.points == 0)
    default_points = 1'000'000;
  plan.base.total_points = opt.full ? 100'000'000 : (opt.points ? opt.points : default_points);
  plan.base.time_steps = opt.steps ? opt.steps : default_steps;

  const std::size_t lo = opt.min_partition ? opt.min_partition : 160;
  const std::size_t hi =
      opt.max_partition ? opt.max_partition : plan.base.total_points;
  plan.partitions = core::granularity_sweep(lo, hi, opt.per_decade ? opt.per_decade : 3);

  plan.samples = opt.samples ? opt.samples : (opt.mode == "native" ? 3 : 1);
  return plan;
}

// Runs the sweep for one core count, reusing the backend's 1-core baselines.
inline std::vector<core::sweep_point> run_series(
    const fig_plan& plan, int cores, std::vector<double>& baselines, bool quiet) {
  core::sweep_config cfg;
  cfg.base = plan.base;
  cfg.partition_sizes = plan.partitions;
  cfg.cores = cores;
  cfg.samples = plan.samples;
  core::granularity_experiment exp(*plan.backend, cfg);
  if (!baselines.empty()) exp.set_baselines(baselines);
  auto points = exp.run([&](const core::sweep_point& p) {
    if (!quiet)
      std::fprintf(stderr, "  [%s %2d cores] partition %-10zu exec %.4f s\n",
                   plan.platform_label.c_str(), cores, p.partition_size,
                   p.exec_time_s.mean());
  });
  baselines = exp.baselines();
  return points;
}

inline void emit_table(table_writer& table, const std::string& title,
                       const std::string& csv_prefix, const std::string& csv_tag) {
  std::cout << "\n" << title << "\n";
  table.print(std::cout);
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + csv_tag + ".csv";
    if (table.save_csv(path)) std::cout << "(csv written to " << path << ")\n";
  }
}

// Declarative column for the per-core-count metric figures (4/5, 7/8, 9/10):
// one table per core count, one row per partition size.
struct metric_column {
  std::string title;
  double (*extract)(const core::sweep_point&);
  int precision = 4;
};

inline void run_metric_figure(const fig_options& opt, const std::string& figure_name,
                              const std::string& default_platform,
                              std::vector<int> default_cores, std::size_t default_steps,
                              const std::vector<metric_column>& columns,
                              std::vector<std::vector<core::sweep_point>>* out = nullptr) {
  const fig_plan plan = make_plan(opt, default_platform, std::move(default_cores),
                                  default_steps);
  std::vector<double> baselines;
  for (const int cores : plan.cores) {
    auto points = run_series(plan, cores, baselines, opt.quiet);

    std::vector<std::string> header{"partition", "tasks"};
    for (const auto& col : columns) header.push_back(col.title);
    table_writer table(std::move(header));
    for (const auto& p : points) {
      std::vector<std::string> row{
          format_count(static_cast<std::int64_t>(p.partition_size)),
          format_count(static_cast<std::int64_t>(p.num_tasks))};
      for (const auto& col : columns)
        row.push_back(format_number(col.extract(p), col.precision));
      table.add_row(std::move(row));
    }
    emit_table(table,
               figure_name + " (" + plan.platform_label + ", " +
                   std::to_string(cores) + " cores)",
               opt.csv_prefix,
               figure_name + "_" + plan.platform_label + "_" + std::to_string(cores) + "c");
    if (out) out->push_back(std::move(points));
  }
}

}  // namespace gran::bench
