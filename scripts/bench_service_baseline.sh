#!/usr/bin/env bash
# Records the task-service operating-point baseline (sustained throughput
# and p99 sojourn for a fixed open-loop cell) into results/BENCH_service.json,
# building the bench if needed.
#
# The cell is sized for 1-CPU CI runners and held well below saturation
# (2k req/s x 20 us grain on one worker ~= 4% utilization), so under the
# block policy achieved must track offered with zero rejections. Gates,
# both enforced by the bench itself when a baseline exists:
#   * sustained throughput (achieved/s) must not regress more than 10%;
#   * p99 sojourn must stay under 3x the recorded baseline — generous on
#     purpose: log2-bucket resolution plus shared-runner scheduling noise
#     make tight latency gates flaky, while a broken ingress path moves
#     p99 by orders of magnitude.
# The bench exits non-zero on either breach, then the baseline is refreshed.
#
#   scripts/bench_service_baseline.sh [--rate=N] [--grain=NS] ...
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target service_load >/dev/null

mkdir -p results
extra=()
if [[ -f results/BENCH_service.json ]]; then
  extra+=(--baseline=results/BENCH_service.json)
fi
./build/bench/service_load --duration=2 --rate=2000 --grain=20000 \
  --workers=1 --clients=1 --policy=block --seed=3 \
  --json=results/BENCH_service.json.new \
  "${extra[@]}" "$@" | tee results/service_load.txt
mv results/BENCH_service.json.new results/BENCH_service.json
