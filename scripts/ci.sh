#!/usr/bin/env bash
# The tier-1 verification gate, as one command:
#   1. configure + build everything (warnings are errors via the toolchain);
#   2. run the full ctest suite;
#   3. rebuild the concurrency-critical tests (including the trace-ring
#      concurrency test) under ThreadSanitizer and run them.
#
#   scripts/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== ci: build ==="
cmake -B build -S .
cmake --build build -j

echo "=== ci: ctest ==="
(cd build && ctest --output-on-failure -j "$(nproc)" "$@")

echo "=== ci: tsan ==="
scripts/tsan_check.sh

echo "ci: all green"
