#!/usr/bin/env bash
# The tier-1 verification gate, as one command:
#   1. configure + build everything (warnings are errors via the toolchain);
#   2. run the full ctest suite;
#   3. rebuild the concurrency-critical tests (including the trace-ring
#      concurrency test) under ThreadSanitizer and run them.
#
#   scripts/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== ci: build ==="
cmake -B build -S .
cmake --build build -j

echo "=== ci: ctest ==="
(cd build && ctest --output-on-failure -j "$(nproc)" "$@")

echo "=== ci: graph smoke matrix ==="
# Every task-graph pattern through both executors at tiny sizes: catches
# generator/executor regressions that unit sizes miss, in a few seconds.
for pattern in trivial serial_chain stencil1d fft binary_tree nearest spread random; do
  for mode in native sim; do
    ./build/bench/graph_sweep --pattern="$pattern" --mode="$mode" \
        --width=8 --steps=4 --grain-min=1000 --grain-max=2000 \
        --samples=1 --workers=2 --cores=4 >/dev/null
  done
  # Native again under the message-passing backend — the whole pattern set
  # must drain (termination detection) under channel-steal too; checksum
  # equality across policies is asserted in channel_steal_test.
  GRAN_POLICY=channel-steal ./build/bench/graph_sweep --pattern="$pattern" \
      --mode=native --width=8 --steps=4 --grain-min=1000 --grain-max=2000 \
      --samples=1 --workers=2 >/dev/null
done
echo "graph smoke: 8 patterns x {native,sim,native/channel-steal} ok"

echo "=== ci: trace-report smoke ==="
# Trace a small graph_sweep into a binary dump, analyze it offline with
# gran_trace_report, and check the report carries a critical-path line —
# the analyzer's whole pipeline (emit -> dump -> load -> analyze) in one go.
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT
./build/bench/graph_sweep --pattern=stencil1d --width=8 --steps=6 \
    --grain-min=2000 --grain-max=2000 --samples=1 --workers=2 \
    --trace-bin="$trace_tmp/trace.bin" >/dev/null
./build/tools/gran_trace_report --in="$trace_tmp/trace.bin" \
    > "$trace_tmp/report.txt"
grep -E "critical path: [0-9.]+ ms \([0-9.]+% of wall, [0-9]+ tasks\)" \
    "$trace_tmp/report.txt" >/dev/null \
  || { echo "trace-report smoke: no critical-path line" >&2; \
       cat "$trace_tmp/report.txt" >&2; exit 1; }
echo "trace-report smoke: critical-path line ok"

echo "=== ci: telemetry smoke ==="
# The live telemetry plane end to end: a bench streams windowed metrics in
# both formats, gran_top validates them (JSONL schema + Prometheus grammar),
# then a second run takes a SIGUSR1 flight-recorder dump mid-flight and the
# offline analyzer must load it.
./build/bench/graph_sweep --pattern=stencil1d --width=8 --steps=6 \
    --grain-min=2000 --grain-max=2000 --samples=1 --workers=2 \
    --metrics-out="$trace_tmp/metrics.jsonl" \
    --metrics-prom="$trace_tmp/metrics.prom" \
    --metrics-interval-us=20000 >/dev/null
./build/tools/gran_top --check="$trace_tmp/metrics.jsonl"
./build/tools/gran_top --check-prom="$trace_tmp/metrics.prom"
./build/bench/graph_sweep --pattern=stencil1d --width=64 --steps=200 \
    --grain-min=100000 --grain-max=100000 --samples=3 --workers=2 \
    --metrics-out="$trace_tmp/flight.jsonl" \
    --flight-prefix="$trace_tmp/flight" >/dev/null &
sweep_pid=$!
sleep 1
kill -USR1 "$sweep_pid" 2>/dev/null \
  || { echo "telemetry smoke: sweep finished before SIGUSR1" >&2; exit 1; }
wait "$sweep_pid"
flight_bin=$(ls "$trace_tmp"/flight-*.bin 2>/dev/null | head -1)
[[ -n "$flight_bin" ]] \
  || { echo "telemetry smoke: no flight dump written" >&2; exit 1; }
./build/tools/gran_trace_report --in="$flight_bin" >/dev/null
echo "telemetry smoke: exporters + SIGUSR1 flight dump ok"

echo "=== ci: topology smoke ==="
# Hier-vs-flat steal order and both pinning layouts at CI sizes. The forced
# 2-worker / 2-domain split exercises the remote-steal accounting even on
# single-CPU runners; GRAN_PIN must be honored whatever the host looks like.
./build/bench/ablation_topology --quick --workers=2 --domains=2 >/dev/null
GRAN_PIN=compact ./build/bench/ablation_topology --quick --workers=2 >/dev/null
GRAN_PIN=scatter ./build/bench/ablation_topology --quick --workers=2 >/dev/null
echo "topology smoke: quick + GRAN_PIN={compact,scatter} ok"

echo "=== ci: lazy-split smoke ==="
# A quick Fig. 3-style grain sweep with the closed-loop splitter in the ring,
# native and simulated. No throughput gate at CI sizes (the full gated run is
# scripts/bench_adaptive_baseline.sh); this catches wiring regressions —
# lazy_chunk must run to completion in both modes and the sim must split.
./build/bench/ablation_adaptive --items=100000 --samples=1 --mode=native \
    >/dev/null
./build/bench/ablation_adaptive --items=100000 --samples=1 --mode=sim \
    | grep -q 'sim/busy_spin' \
  || { echo "lazy-split smoke: sim leg missing" >&2; exit 1; }
echo "lazy-split smoke: native + sim ok"

echo "=== ci: service smoke ==="
# Task-service ingress end to end, sized for 1-CPU runners: a short open-loop
# run (fixed seed) through the live runtime and through the DES mirror, its
# report must carry the sojourn-percentile line, and the streamed telemetry
# must validate with the interval.service section present.
./build/bench/service_load --duration=0.5 --rate=2000 --grain=20000 \
    --workers=1 --clients=1 --seed=3 --mode=both \
    --metrics-out="$trace_tmp/service.jsonl" --metrics-interval-us=100000 \
    > "$trace_tmp/service.txt"
grep -E "sojourn p50/p95/p99 = " "$trace_tmp/service.txt" >/dev/null \
  || { echo "service smoke: no sojourn-percentile line" >&2; \
       cat "$trace_tmp/service.txt" >&2; exit 1; }
grep -q '\[sim\]' "$trace_tmp/service.txt" \
  || { echo "service smoke: sim leg missing" >&2; exit 1; }
./build/tools/gran_top --check="$trace_tmp/service.jsonl"
grep -q '"service":{' "$trace_tmp/service.jsonl" \
  || { echo "service smoke: no interval.service section in JSONL" >&2; exit 1; }
echo "service smoke: native + sim + telemetry ok"

echo "=== ci: pmu smoke ==="
# The PMU plane both ways through the same code path. The software-only rung
# (GRAN_PMU=sw) must always work — no perf fds at all — and its report must
# carry the clearly-labeled software-only attribution table. The hardware
# probe (GRAN_PMU=1) must never crash whatever rung perf_event_paranoid or
# the container seccomp policy grants; whichever rung it lands on, the same
# "pmu attribution" table must print.
paranoid=$(cat /proc/sys/kernel/perf_event_paranoid 2>/dev/null || echo "?")
echo "perf_event_paranoid=$paranoid"
GRAN_PMU=sw ./build/tools/gran_trace_report --pattern=stencil1d --width=8 \
    --steps=6 --grain=2000 --workers=2 > "$trace_tmp/pmu_sw.txt" 2>&1
grep -q "pmu attribution (software-only mode" "$trace_tmp/pmu_sw.txt" \
  || { echo "pmu smoke: no software-only attribution table" >&2; \
       cat "$trace_tmp/pmu_sw.txt" >&2; exit 1; }
GRAN_PMU=1 ./build/tools/gran_trace_report --pattern=stencil1d --width=8 \
    --steps=6 --grain=2000 --workers=2 > "$trace_tmp/pmu_hw.txt" 2>&1
grep -q "pmu attribution (" "$trace_tmp/pmu_hw.txt" \
  || { echo "pmu smoke: no attribution table under GRAN_PMU=1" >&2; \
       cat "$trace_tmp/pmu_hw.txt" >&2; exit 1; }
# Streamed telemetry with the plane on: gran_top must accept the interval.pmu
# JSONL section and the gran_pmu_* Prometheus families.
GRAN_PMU=sw ./build/bench/graph_sweep --pattern=stencil1d --width=8 --steps=6 \
    --grain-min=2000 --grain-max=2000 --samples=1 --workers=2 \
    --metrics-out="$trace_tmp/pmu.jsonl" --metrics-prom="$trace_tmp/pmu.prom" \
    --metrics-interval-us=20000 >/dev/null
./build/tools/gran_top --check="$trace_tmp/pmu.jsonl"
./build/tools/gran_top --check-prom="$trace_tmp/pmu.prom"
grep -q '"pmu":{' "$trace_tmp/pmu.jsonl" \
  || { echo "pmu smoke: no interval.pmu section in JSONL" >&2; exit 1; }
echo "pmu smoke: software-only + hardware-probe (paranoid=$paranoid) ok"

echo "=== ci: tsan ==="
scripts/tsan_check.sh

echo "ci: all green"
