#!/usr/bin/env bash
# One-command reproduction: build, test, and regenerate every table/figure.
#
#   scripts/reproduce.sh [--full]
#
# --full uses the paper's 100 M-point grid (hours); default is the 10 M-point
# scale (minutes). Outputs land in results/ as text tables and CSVs.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=""
if [[ "${1:-}" == "--full" ]]; then FULL="--full"; fi

echo "=== configure & build ==="
cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure

mkdir -p results
echo "=== tables & figures ==="
run() {
  local name="$1"; shift
  echo "--- $name ---"
  "./build/bench/$name" "$@" --quiet --csv=results/ | tee "results/$name.txt"
}

./build/bench/table1_platforms --csv=results/ | tee results/table1_platforms.txt
run fig3_exec_time $FULL
run fig4_idle_rate_haswell $FULL --select
run fig5_idle_rate_phi $FULL
run fig6_wait_time $FULL
run fig7_overheads_haswell $FULL
run fig8_overheads_phi $FULL
run fig9_pending_queue_haswell $FULL --select
run fig10_pending_queue_phi $FULL

echo "=== ablations & micro benches ==="
run ablation_scheduler $FULL
run ablation_steal_order $FULL
./build/bench/ablation_adaptive | tee results/ablation_adaptive.txt
./build/bench/micro_grain_sweep | tee results/micro_grain_sweep.txt
./build/bench/micro_steal_throughput --json=results/BENCH_steal.json | tee results/micro_steal_throughput.txt
./build/bench/micro_grain_sweep --mode=sim --cores=28 | tee results/micro_grain_sweep_sim.txt
./build/bench/micro_runtime | tee results/micro_runtime.txt

echo "=== done; see results/ and EXPERIMENTS.md ==="
