#!/usr/bin/env bash
# Records the closed-loop granularity baseline (best-fixed sweep vs
# adaptive_chunk vs lazy_chunk) into results/BENCH_adaptive.json, building the
# bench if needed. The --check gate fails the script when lazy_chunk lands
# below 90% of the best fixed grain's throughput in any mode/kernel cell —
# the controller must find the sweet spot without being told the grain.
#
#   scripts/bench_adaptive_baseline.sh [--items=N] [--samples=N] [--ratio=R] ...
# Extra args go to ablation_adaptive.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target ablation_adaptive >/dev/null

mkdir -p results
# 2M items x 5 interleaved samples: large enough that per-pass runtime
# dominates scheduling noise, sampled round-robin so host speed drift (cloud
# hosts swing ~2x between phases) hits every strategy equally.
./build/bench/ablation_adaptive --items=2000000 --samples=5 --mode=both \
    --check --ratio=0.9 --json=results/BENCH_adaptive.json "$@" \
  | tee results/ablation_adaptive.txt
