#!/usr/bin/env bash
# Builds the concurrency-critical tests under ThreadSanitizer and runs them.
#
#   scripts/tsan_check.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-tsan/) so the normal build stays warm.
# Exits nonzero on any data-race report or test failure.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
TESTS=(chase_lev_test queues_test thread_manager_test channel_steal_test steal_order_test trace_test telemetry_test analysis_test pmu_test graph_test split_test service_test)

cmake -B "$BUILD" -S . \
  -DGRAN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGRAN_BUILD_BENCH=OFF \
  -DGRAN_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j --target "${TESTS[@]}"

# halt_on_error makes the first race fail the test run instead of just
# printing; second_deadlock_stack improves mutex-order reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

status=0
for t in "${TESTS[@]}"; do
  echo "=== tsan: $t ==="
  "./$BUILD/tests/$t" "$@" || status=$?
done

if [[ $status -ne 0 ]]; then
  echo "tsan_check: FAILED" >&2
  exit "$status"
fi
echo "tsan_check: all clean"
