#!/usr/bin/env bash
# Records the telemetry-plane overhead baseline (end-to-end task throughput
# with the streaming telemetry session off/on) into results/BENCH_telemetry.json,
# building the bench if needed.
#
# Two gates, both enforced by the bench itself:
#   * absolute: telemetry-ON overhead must stay under 2% (the budget
#     docs/TELEMETRY.md promises) — always checked;
#   * relative: when a baseline exists, the telemetry-OFF throughput must not
#     regress more than 2% against it (catches a hot-path cost sneaking into
#     the always-on heartbeat stamping).
# The bench exits non-zero on either breach, then the baseline is refreshed.
#
#   scripts/bench_telemetry_baseline.sh [--tasks=N] [--spin=N] ...
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_telemetry_overhead >/dev/null

mkdir -p results
extra=()
if [[ -f results/BENCH_telemetry.json ]]; then
  extra+=(--baseline=results/BENCH_telemetry.json)
fi
./build/bench/micro_telemetry_overhead --json=results/BENCH_telemetry.json.new \
  "${extra[@]}" "$@" | tee results/micro_telemetry_overhead.txt
mv results/BENCH_telemetry.json.new results/BENCH_telemetry.json
