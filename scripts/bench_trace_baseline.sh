#!/usr/bin/env bash
# Records the tracing-overhead baseline (disabled-path gate cost, enabled emit
# cost, end-to-end task throughput off/on) into results/BENCH_trace.json,
# building the bench if needed.
#
# When a baseline already exists, the run is first checked against it: the
# tracing-DISABLED throughput must not regress more than 1%, and (when the
# baseline recorded it) the tracing-ENABLED throughput more than 10% — the
# enabled path now pays one task_enqueue event per spawn, so its budget is
# looser but still gated. The bench exits non-zero on either breach, then
# the baseline is refreshed.
#
#   scripts/bench_trace_baseline.sh [--tasks=N] [--spin=N] ...
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_trace_overhead >/dev/null

mkdir -p results
extra=()
if [[ -f results/BENCH_trace.json ]]; then
  extra+=(--baseline=results/BENCH_trace.json)
fi
./build/bench/micro_trace_overhead --json=results/BENCH_trace.json.new \
  "${extra[@]}" "$@" | tee results/micro_trace_overhead.txt
mv results/BENCH_trace.json.new results/BENCH_trace.json
