#!/usr/bin/env bash
# Records the work-transfer throughput ablation (Chase-Lev deque vs mutex
# deque vs channel-steal request/delivery protocol) into
# results/BENCH_steal.json, and the flat-vs-hierarchical victim-order ablation
# into results/BENCH_steal_topology.json, building the benches if needed.
#
#   scripts/bench_steal_baseline.sh [--ops=N] [--thieves=a,b,c] ...
# Extra args go to micro_steal_throughput only.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_steal_throughput ablation_topology >/dev/null

mkdir -p results
./build/bench/micro_steal_throughput --json=results/BENCH_steal.json "$@" \
  | tee results/micro_steal_throughput.txt

# Full-runtime view of the same subsystem: hierarchical vs flat victim order.
# The forced 2-worker / 2-domain split keeps the steal and remote columns
# populated even on single-CPU hosts (where workers would default to 1).
./build/bench/ablation_topology --workers=2 --domains=2 \
    --json=results/BENCH_steal_topology.json \
  | tee results/ablation_topology.txt
