#!/usr/bin/env bash
# Records the steal-deque throughput baseline (Chase-Lev vs mutex deque) into
# results/BENCH_steal.json, building the bench if needed.
#
#   scripts/bench_steal_baseline.sh [--ops=N] [--thieves=a,b,c] ...
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_steal_throughput >/dev/null

mkdir -p results
./build/bench/micro_steal_throughput --json=results/BENCH_steal.json "$@" \
  | tee results/micro_steal_throughput.txt
