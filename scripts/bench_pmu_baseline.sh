#!/usr/bin/env bash
# Records the PMU-plane overhead baseline (end-to-end task throughput with
# the plane off / on the software rung / probing real hardware) into
# results/BENCH_pmu.json, building the bench if needed.
#
# When a baseline already exists, the run is first checked against it: the
# PMU-OFF throughput — the hot path every run pays — must not regress more
# than 1%, and (when the baseline recorded it) the software-rung throughput
# more than 10% (two counter samples per phase are intended work). The bench
# exits non-zero on either breach, then the baseline is refreshed. The
# hardware column is informational only: the rung it lands on depends on
# perf_event_paranoid / seccomp and is not comparable across machines.
#
#   scripts/bench_pmu_baseline.sh [--tasks=N] [--spin=N] ...
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_pmu_overhead >/dev/null

mkdir -p results
extra=()
if [[ -f results/BENCH_pmu.json ]]; then
  extra+=(--baseline=results/BENCH_pmu.json)
fi
./build/bench/micro_pmu_overhead --json=results/BENCH_pmu.json.new \
  "${extra[@]}" "$@" | tee results/micro_pmu_overhead.txt
mv results/BENCH_pmu.json.new results/BENCH_pmu.json
